#include "serve/server.hpp"

#include <bit>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "chem/scf.hpp"
#include "linalg/matrix.hpp"

namespace emc::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless per-attempt loss decision — same idiom as the distributed
/// builder's task_attempt_lost, keyed on the job id instead of the task
/// index so replays are exact for a fixed submission order.
bool job_attempt_lost(const ServerOptions& options, std::int64_t job_id,
                      int attempt) {
  std::uint64_t h = options.fault_seed ^
                    (static_cast<std::uint64_t>(job_id) + 1) *
                        0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(attempt) + 1) *
                        0xbf58476d1ce4e5b9ULL;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < options.fail_prob;
}

/// FNV-1a over the matrix's double bit patterns (row-major): a bitwise
/// determinism witness cheap enough to ship in a JobResult.
std::uint64_t matrix_digest(const linalg::Matrix& m) {
  std::uint64_t h = 14695981039346656037ULL;
  const double* data = m.data();
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &data[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h = (h ^ ((bits >> (8 * b)) & 0xffULL)) * 1099511628211ULL;
    }
  }
  return h;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ScfServer::ScfServer(const ServerOptions& options) : options_(options) {
  if (options_.workers < 1) {
    throw std::invalid_argument("ScfServer: workers must be >= 1");
  }
  if (options_.queue_capacity < 1) {
    throw std::invalid_argument("ScfServer: queue_capacity must be >= 1");
  }
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("ScfServer: max_attempts must be >= 1");
  }
  cache_ = std::make_unique<FockCache>(
      options_.cache_capacity, options_.screen_threshold, options_.metrics);
}

ScfServer::~ScfServer() { stop(); }

ScfServer::Submission ScfServer::submit(const JobRequest& request) {
  Submission out;
  std::unique_ptr<Pending> displaced;  // fulfilled outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_.submitted;
    if (stopping_ || stopped_) {
      ++counts_.rejected;
      std::promise<JobResult> p;
      out.result = p.get_future();
      JobResult r;
      r.error = "rejected";
      p.set_value(std::move(r));
      return out;
    }
    if (queue_.size() >= options_.queue_capacity) {
      if (options_.overload == ServerOptions::Overload::kReject) {
        ++counts_.rejected;
        if (options_.metrics != nullptr) {
          options_.metrics->counter("serve/rejected").add();
        }
        std::promise<JobResult> p;
        out.result = p.get_future();
        JobResult r;
        r.error = "rejected";
        p.set_value(std::move(r));
        return out;
      }
      // kShed: the victim is the worst queued job — lowest priority,
      // then youngest (map rbegin). The new arrival must STRICTLY
      // outrank it to displace it; otherwise the new arrival itself is
      // shed (ties keep the incumbent: it was admitted first).
      auto victim = std::prev(queue_.end());
      const int victim_priority = -victim->first.first;
      if (request.priority > victim_priority) {
        ++counts_.shed;
        if (options_.metrics != nullptr) {
          options_.metrics->counter("serve/shed").add();
        }
        displaced = std::move(victim->second);
        queue_.erase(victim);
      } else {
        ++counts_.shed;
        if (options_.metrics != nullptr) {
          options_.metrics->counter("serve/shed").add();
        }
        out.admit = Admit::kShedNew;
        std::promise<JobResult> p;
        out.result = p.get_future();
        JobResult r;
        r.error = "shed";
        p.set_value(std::move(r));
        return out;
      }
    }
    auto pending = std::make_unique<Pending>();
    pending->request = request;
    pending->job_id = next_job_id_++;
    pending->enqueued_at = std::chrono::steady_clock::now();
    out.admit = Admit::kAccepted;
    out.job_id = pending->job_id;
    out.result = pending->promise.get_future();
    ++counts_.accepted;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("serve/accepted").add();
    }
    queue_.emplace(QueueKey{-request.priority, next_seq_++},
                   std::move(pending));
  }
  if (displaced) {
    JobResult r;
    r.job_id = displaced->job_id;
    r.error = "shed";
    displaced->promise.set_value(std::move(r));
  }
  work_cv_.notify_one();
  return out;
}

void ScfServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  pool_ = std::make_unique<exec::ThreadPool>(options_.workers);
  // ThreadPool::run is SPMD and blocks until every thread exits the
  // body, so it runs on a dedicated dispatcher thread; the dispatcher
  // itself participates as pool thread 0.
  dispatcher_ = std::thread(
      [this] { pool_->run([this](int t) { worker_loop(t); }); });
}

void ScfServer::worker_loop(int /*thread_id*/) {
  for (;;) {
    std::unique_ptr<Pending> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      auto it = queue_.begin();  // highest priority, earliest sequence
      job = std::move(it->second);
      queue_.erase(it);
      ++active_jobs_;
    }
    JobResult result = execute(*job);
    observe(job->request, result);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      result.completion_seq = counts_.completed;
      ++counts_.completed;
      if (!result.ok) ++counts_.failed;
      counts_.retries += result.attempts - 1;
      --active_jobs_;
      if (queue_.empty() && active_jobs_ == 0) idle_cv_.notify_all();
    }
    job->promise.set_value(std::move(result));
  }
}

JobResult ScfServer::execute(Pending& job) {
  JobResult result;
  result.job_id = job.job_id;
  result.queue_seconds = seconds_since(job.enqueued_at);
  const auto service_start = std::chrono::steady_clock::now();

  // Replay fault-lost attempts up front (the PR 3 pattern): losses are
  // a pure function of (seed, job id, attempt), and since every attempt
  // of a job computes identical bits, only the LAST attempt needs to
  // run. The final attempt is forced through.
  int attempt = 0;
  if (options_.fail_prob > 0.0) {
    while (attempt + 1 < options_.max_attempts &&
           job_attempt_lost(options_, job.job_id, attempt)) {
      ++attempt;
      if (options_.metrics != nullptr) {
        options_.metrics->counter("serve/retries").add();
      }
    }
  }
  result.attempts = attempt + 1;

  try {
    const auto entry = cache_->get(job.request.molecule, job.request.basis);
    const chem::FockBuilder& builder = *entry->builder;
    if (job.request.kind == JobRequest::Kind::kFockBuild) {
      // One G build against the deterministic unit-density guess; the
      // digest witnesses bitwise reproducibility across pool sizes.
      const std::size_t n =
          static_cast<std::size_t>(entry->basis.function_count());
      const linalg::Matrix density = linalg::Matrix::identity(n);
      const linalg::Matrix g = builder.build_g(density);
      result.g_digest = matrix_digest(g);
      result.g_norm = g.norm();
    } else {
      chem::ScfOptions scf;
      scf.max_iterations = job.request.scf_max_iterations;
      scf.screen_threshold = options_.screen_threshold;
      const chem::ScfResult r = chem::run_rhf_with_builder(
          entry->molecule, entry->basis,
          [&builder](const linalg::Matrix& p) { return builder.build_g(p); },
          scf);
      result.energy = r.energy;
      result.scf_converged = r.converged;
      result.scf_iterations = r.iterations;
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  result.service_seconds = seconds_since(service_start);
  return result;
}

void ScfServer::observe(const JobRequest& request, const JobResult& result) {
  if (options_.metrics == nullptr) return;
  const std::string prefix = "serve/t" + std::to_string(request.tenant);
  options_.metrics->histogram(prefix + "/queue_seconds")
      .record(result.queue_seconds);
  options_.metrics->histogram(prefix + "/service_seconds")
      .record(result.service_seconds);
  options_.metrics->histogram(prefix + "/latency_seconds")
      .record(result.queue_seconds + result.service_seconds);
  options_.metrics->counter(prefix + "/completed").add();
}

void ScfServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_ || stopped_) return;
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && active_jobs_ == 0; });
}

void ScfServer::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopped_) return;
    if (!started_) {
      // Never started: fail any queued futures so callers don't hang.
      stopping_ = stopped_ = true;
      for (auto& [key, pending] : queue_) {
        JobResult r;
        r.job_id = pending->job_id;
        r.error = "rejected";
        pending->promise.set_value(std::move(r));
      }
      queue_.clear();
      return;
    }
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && active_jobs_ == 0; });
    stopping_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  pool_.reset();
}

ScfServer::Counts ScfServer::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::size_t ScfServer::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace emc::serve
