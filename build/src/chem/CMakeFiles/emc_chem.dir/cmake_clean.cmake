file(REMOVE_RECURSE
  "CMakeFiles/emc_chem.dir/basis.cpp.o"
  "CMakeFiles/emc_chem.dir/basis.cpp.o.d"
  "CMakeFiles/emc_chem.dir/boys.cpp.o"
  "CMakeFiles/emc_chem.dir/boys.cpp.o.d"
  "CMakeFiles/emc_chem.dir/element.cpp.o"
  "CMakeFiles/emc_chem.dir/element.cpp.o.d"
  "CMakeFiles/emc_chem.dir/eri.cpp.o"
  "CMakeFiles/emc_chem.dir/eri.cpp.o.d"
  "CMakeFiles/emc_chem.dir/fock.cpp.o"
  "CMakeFiles/emc_chem.dir/fock.cpp.o.d"
  "CMakeFiles/emc_chem.dir/integrals.cpp.o"
  "CMakeFiles/emc_chem.dir/integrals.cpp.o.d"
  "CMakeFiles/emc_chem.dir/molecule.cpp.o"
  "CMakeFiles/emc_chem.dir/molecule.cpp.o.d"
  "CMakeFiles/emc_chem.dir/mp2.cpp.o"
  "CMakeFiles/emc_chem.dir/mp2.cpp.o.d"
  "CMakeFiles/emc_chem.dir/properties.cpp.o"
  "CMakeFiles/emc_chem.dir/properties.cpp.o.d"
  "CMakeFiles/emc_chem.dir/scf.cpp.o"
  "CMakeFiles/emc_chem.dir/scf.cpp.o.d"
  "CMakeFiles/emc_chem.dir/shell_pair.cpp.o"
  "CMakeFiles/emc_chem.dir/shell_pair.cpp.o.d"
  "CMakeFiles/emc_chem.dir/uhf.cpp.o"
  "CMakeFiles/emc_chem.dir/uhf.cpp.o.d"
  "libemc_chem.a"
  "libemc_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
