#include "core/task_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace emc::core {

double TaskModel::total_cost() const {
  double s = 0.0;
  for (double c : costs) s += c;
  return s;
}

TaskModel build_task_model(const std::string& molecule_name,
                           const TaskModelOptions& options) {
  return build_task_model(chem::make_named_molecule(molecule_name), options);
}

TaskModel build_task_model(const chem::Molecule& molecule,
                           const TaskModelOptions& options) {
  TaskModel model{molecule,
                  chem::BasisSet::build(molecule, options.basis_name),
                  {},
                  {},
                  {}};

  const chem::FockBuilder builder(model.basis, options.screen_threshold);
  model.tasks = builder.make_tasks();

  model.shell_atom.reserve(model.basis.shell_count());
  for (const chem::Shell& s : model.basis.shells()) {
    model.shell_atom.push_back(s.atom_index);
  }

  if (options.measure_costs) {
    model.costs = measure_task_costs(model, options.screen_threshold);
  } else {
    model.costs.reserve(model.tasks.size());
    for (const auto& task : model.tasks) {
      model.costs.push_back(builder.estimate_task_cost(task) *
                            options.analytic_cost_scale);
    }
  }
  return model;
}

int shell_owner(int shell, int n_shells, int n_procs) {
  if (shell < 0 || shell >= n_shells) {
    throw std::out_of_range("shell_owner: shell out of range");
  }
  return static_cast<int>(static_cast<std::int64_t>(shell) * n_procs /
                          n_shells);
}

std::size_t mean_task_comm_bytes(const TaskModel& model) {
  if (model.tasks.empty()) return 0;
  const auto& shells = model.basis.shells();
  const double n = static_cast<double>(model.basis.function_count());
  double elements = 0.0;
  for (const chem::ShellPairTask& task : model.tasks) {
    const double di =
        shells[static_cast<std::size_t>(task.si)].function_count();
    const double dj =
        shells[static_cast<std::size_t>(task.sj)].function_count();
    // Density rows for shells i and j fetched, plus the same J and K
    // stripes accumulated back: 2 stripes each way.
    elements += 2.0 * (di + dj) * n;
  }
  return static_cast<std::size_t>(
      8.0 * elements / static_cast<double>(model.tasks.size()));
}

lb::BipartiteTaskGraph make_locality_instance(const TaskModel& model,
                                              int n_procs, int window) {
  if (n_procs < 1) {
    throw std::invalid_argument("make_locality_instance: n_procs < 1");
  }
  lb::BipartiteTaskGraph g;
  g.n_procs = n_procs;
  g.weights = model.costs;
  g.eligible.reserve(model.tasks.size());

  const int n_shells = model.shell_count();
  std::vector<int> procs;
  for (const auto& task : model.tasks) {
    procs.clear();
    for (int shell : {task.si, task.sj}) {
      const int owner = shell_owner(shell, n_shells, n_procs);
      for (int d = -window; d <= window; ++d) {
        const int p = owner + d;
        if (p >= 0 && p < n_procs) procs.push_back(p);
      }
    }
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
    g.eligible.push_back(procs);
  }
  return g;
}

graph::Hypergraph make_task_hypergraph(const TaskModel& model) {
  graph::Hypergraph::Builder b(
      static_cast<graph::VertexId>(model.task_count()));
  for (std::size_t t = 0; t < model.task_count(); ++t) {
    b.set_vertex_weight(static_cast<graph::VertexId>(t), model.costs[t]);
  }

  // Net per shell: the tasks whose bra pair includes it.
  std::vector<std::vector<graph::VertexId>> pins(
      static_cast<std::size_t>(model.shell_count()));
  for (std::size_t t = 0; t < model.task_count(); ++t) {
    pins[static_cast<std::size_t>(model.tasks[t].si)].push_back(
        static_cast<graph::VertexId>(t));
    if (model.tasks[t].sj != model.tasks[t].si) {
      pins[static_cast<std::size_t>(model.tasks[t].sj)].push_back(
          static_cast<graph::VertexId>(t));
    }
  }
  for (auto& net : pins) {
    if (net.size() >= 2) b.add_net(std::move(net));
  }
  return b.build();
}

std::vector<double> measure_task_costs(const TaskModel& model,
                                       double screen_threshold,
                                       int repeats) {
  const chem::FockBuilder builder(model.basis, screen_threshold);
  const auto n = static_cast<std::size_t>(model.basis.function_count());

  // Crude but realistic model density: identity-like with decaying
  // off-diagonals; magnitudes only affect digestion, not integral cost.
  linalg::Matrix density(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const auto d = r > c ? r - c : c - r;
      density(r, c) = d == 0 ? 1.0 : (d < 4 ? 0.1 : 0.0);
    }
  }

  linalg::Matrix j_accum(n, n), k_accum(n, n);
  std::vector<double> costs;
  costs.reserve(model.tasks.size());
  emc::Timer timer;
  for (const auto& task : model.tasks) {
    double best = 0.0;
    for (int rep = 0; rep < std::max(1, repeats); ++rep) {
      timer.reset();
      builder.execute_task(task, density, j_accum, k_accum);
      const double t = timer.seconds();
      if (rep == 0 || t < best) best = t;
    }
    costs.push_back(best);
  }
  return costs;
}

}  // namespace emc::core
