file(REMOVE_RECURSE
  "CMakeFiles/test_pgas.dir/test_pgas.cpp.o"
  "CMakeFiles/test_pgas.dir/test_pgas.cpp.o.d"
  "test_pgas"
  "test_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
