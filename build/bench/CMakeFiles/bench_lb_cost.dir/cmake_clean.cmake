file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_cost.dir/bench_lb_cost.cpp.o"
  "CMakeFiles/bench_lb_cost.dir/bench_lb_cost.cpp.o.d"
  "bench_lb_cost"
  "bench_lb_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
