file(REMOVE_RECURSE
  "CMakeFiles/emc_util.dir/cli.cpp.o"
  "CMakeFiles/emc_util.dir/cli.cpp.o.d"
  "CMakeFiles/emc_util.dir/log.cpp.o"
  "CMakeFiles/emc_util.dir/log.cpp.o.d"
  "CMakeFiles/emc_util.dir/stats.cpp.o"
  "CMakeFiles/emc_util.dir/stats.cpp.o.d"
  "CMakeFiles/emc_util.dir/table.cpp.o"
  "CMakeFiles/emc_util.dir/table.cpp.o.d"
  "libemc_util.a"
  "libemc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
