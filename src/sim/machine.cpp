#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::sim {

net::NetworkModel make_network(const MachineConfig& config) {
  return net::NetworkModel(config.network, config.n_procs,
                           config.procs_per_node,
                           config.intra_node_latency,
                           config.inter_node_latency);
}

std::vector<double> draw_core_speeds(const MachineConfig& config) {
  std::vector<double> speeds(static_cast<std::size_t>(config.n_procs), 1.0);
  if (config.noise_amplitude <= 0.0) return speeds;
  emc::Rng rng(config.seed ^ 0xc0ffee);
  for (double& s : speeds) {
    s = 1.0 - config.noise_amplitude * rng.uniform();
  }
  return speeds;
}

namespace {

void validate_fault_model(const FaultModel& model) {
  const bool bad_prob = model.fault_prob < 0.0 || model.fault_prob > 1.0 ||
                        model.drop_prob < 0.0 || model.drop_prob >= 1.0;
  if (bad_prob) {
    throw std::invalid_argument(
        "FaultModel: fault_prob must be in [0,1], drop_prob in [0,1)");
  }
  if (model.duration < 0.0 || model.onset_min < 0.0 ||
      model.onset_max < model.onset_min) {
    throw std::invalid_argument("FaultModel: bad onset/duration");
  }
  if (model.slowdown_factor < 0.0 || model.slowdown_factor > 1.0) {
    throw std::invalid_argument(
        "FaultModel: slowdown_factor outside [0,1]");
  }
  if (model.retry_backoff < 0.0 || model.backoff_multiplier < 1.0 ||
      model.max_retries < 1) {
    throw std::invalid_argument("FaultModel: bad retry parameters");
  }
  if (model.outage_duration < 0.0) {
    throw std::invalid_argument("FaultModel: negative outage duration");
  }
}

}  // namespace

FaultSchedule::FaultSchedule(const MachineConfig& config)
    : model_(config.faults), seed_(config.seed), active_(config.faults.enabled()) {
  validate_fault_model(model_);
  if (!active_) return;
  windows_.assign(static_cast<std::size_t>(config.n_procs), FaultWindow{});
  if (model_.fault_prob <= 0.0 || model_.duration <= 0.0) return;
  emc::Rng rng(seed_ ^ 0xfa017ULL);
  for (auto& w : windows_) {
    // Draw both variates unconditionally so the per-proc stream does not
    // shift when fault_prob changes.
    const double hit = rng.uniform();
    const double onset = rng.uniform(model_.onset_min, model_.onset_max);
    if (hit >= model_.fault_prob) continue;
    w.start = onset;
    w.end = onset + model_.duration;
    w.factor = model_.slowdown_factor;
  }
}

const FaultWindow& FaultSchedule::window(int proc) const {
  static const FaultWindow kNone{};
  const auto p = static_cast<std::size_t>(proc);
  return p < windows_.size() ? windows_[p] : kNone;
}

double FaultSchedule::finish_time(int proc, double start, double work,
                                  int* restarts,
                                  double* last_restart) const {
  if (!active_) return start + work;
  const FaultWindow& w = window(proc);
  if (!w.exists() || start >= w.end) return start + work;

  double t = start;
  double remaining = work;
  if (start < w.start) {
    const double head = w.start - start;
    if (head >= remaining) return start + remaining;  // done before fault
    if (w.factor <= 0.0) {
      // Stall mid-flight: the partial execution is lost and the task
      // re-runs from scratch once the window closes.
      if (restarts != nullptr) ++*restarts;
      if (last_restart != nullptr) *last_restart = w.end;
      return w.end + work;
    }
    remaining -= head;
    t = w.start;
  } else if (w.factor <= 0.0) {
    // Dispatched inside a stall: nothing executed yet, just deferred.
    return w.end + work;
  }

  // Dilated progress inside the window (factor > 0).
  const double capacity = (w.end - t) * w.factor;
  if (capacity >= remaining) return t + remaining / w.factor;
  return w.end + (remaining - capacity);
}

bool FaultSchedule::drop_op(int proc, std::uint64_t op_seq,
                            int attempt) const {
  if (!active_ || model_.drop_prob <= 0.0) return false;
  if (attempt >= model_.max_retries) return false;  // forced through
  std::uint64_t h = seed_ ^
                    (static_cast<std::uint64_t>(proc) + 1) *
                        0x9e3779b97f4a7c15ULL ^
                    (op_seq + 1) * 0xbf58476d1ce4e5b9ULL ^
                    (static_cast<std::uint64_t>(attempt) + 1) *
                        0x94d049bb133111ebULL;
  const double u =
      static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < model_.drop_prob;
}

double FaultSchedule::backoff(int attempt) const {
  double delay = model_.retry_backoff;
  for (int i = 0; i < attempt; ++i) delay *= model_.backoff_multiplier;
  return delay;
}

double FaultSchedule::outage_release(double arrival) const {
  if (!active_ || model_.outage_start < 0.0 ||
      model_.outage_duration <= 0.0) {
    return arrival;
  }
  const double end = model_.outage_start + model_.outage_duration;
  if (arrival >= model_.outage_start && arrival < end) return end;
  return arrival;
}

std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins) {
  return utilization_timeline(std::span<const TraceEvent>(result.trace),
                              result.makespan, n_procs, bins);
}

std::vector<TraceEvent> merge_round_traces(
    std::span<const SimResult> rounds) {
  std::vector<TraceEvent> merged;
  double offset = 0.0;
  for (std::size_t round = 0; round < rounds.size(); ++round) {
    TraceEvent boundary;
    boundary.type = TraceEventType::kIterationBoundary;
    boundary.proc = 0;
    boundary.task = static_cast<std::int64_t>(round);
    boundary.start = offset;
    boundary.end = offset;
    merged.push_back(boundary);
    for (TraceEvent ev : rounds[round].trace) {
      ev.start += offset;
      ev.end += offset;
      merged.push_back(ev);
    }
    offset += rounds[round].makespan;
  }
  return merged;
}

double SimResult::utilization() const {
  if (busy.empty() || makespan <= 0.0) return 0.0;
  double total = 0.0;
  for (double b : busy) total += b;
  return total / (makespan * static_cast<double>(busy.size()));
}

}  // namespace emc::sim
