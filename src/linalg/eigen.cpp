#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace emc::linalg {

namespace {

/// Sum of squares of strictly-off-diagonal entries.
double off_diagonal_mass(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return s;
}

}  // namespace

EigenResult eigen_symmetric(const Matrix& input, double tol, int max_sweeps) {
  if (!input.square()) {
    throw std::invalid_argument("eigen_symmetric: matrix not square");
  }
  const double scale = std::max(input.max_abs(), 1.0);
  if (!input.is_symmetric(1e-10 * scale)) {
    throw std::invalid_argument("eigen_symmetric: matrix not symmetric");
  }

  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  if (n <= 1) {
    EigenResult r;
    r.values.assign(n, n == 1 ? a(0, 0) : 0.0);
    r.vectors = v;
    return r;
  }

  const double threshold = tol * tol * scale * scale;
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_mass(a) <= threshold) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tol * scale * 1e-4) continue;

        // Classic Jacobi rotation annihilating a(p,q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t =
            std::copysign(1.0, theta) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged && off_diagonal_mass(a) > threshold) {
    throw std::runtime_error("eigen_symmetric: Jacobi did not converge");
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  EigenResult r;
  r.values.resize(n);
  r.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    r.values[c] = a(order[c], order[c]);
    for (std::size_t row = 0; row < n; ++row) {
      r.vectors(row, c) = v(row, order[c]);
    }
  }
  return r;
}

Matrix inverse_sqrt(const Matrix& s, double min_eigenvalue) {
  EigenResult eig = eigen_symmetric(s);
  const std::size_t n = s.rows();
  for (double lambda : eig.values) {
    if (lambda < min_eigenvalue) {
      throw std::runtime_error(
          "inverse_sqrt: matrix is not positive definite enough "
          "(eigenvalue " +
          std::to_string(lambda) + ")");
    }
  }
  std::vector<double> inv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_sqrt[i] = 1.0 / std::sqrt(eig.values[i]);
  }
  // X = V diag(1/sqrt(lambda)) V^T
  Matrix d = Matrix::diagonal(inv_sqrt);
  return matmul(eig.vectors, matmul(d, eig.vectors.transposed()));
}

}  // namespace emc::linalg
