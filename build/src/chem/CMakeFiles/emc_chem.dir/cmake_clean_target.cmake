file(REMOVE_RECURSE
  "libemc_chem.a"
)
