# Empty dependencies file for test_distributed_fock.
# This may be replaced when dependencies are built.
