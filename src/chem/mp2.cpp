#include "chem/mp2.hpp"

#include <stdexcept>
#include <vector>

#include "chem/eri.hpp"
#include "chem/integrals.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"

namespace emc::chem {

namespace {

using linalg::Matrix;

/// One quarter transformation: contracts the first index of `tensor`
/// (treated as [n][rest]) with MO coefficients and cycles the index
/// order, so four applications yield the fully transformed tensor.
std::vector<double> quarter_transform(const std::vector<double>& tensor,
                                      const Matrix& c, std::size_t n) {
  const std::size_t rest = n * n * n;
  std::vector<double> out(tensor.size(), 0.0);
  // out[q][rest] = sum_p C(p, q) * tensor[p][rest], then transpose the
  // leading index to the back so the next call transforms the next one.
  for (std::size_t q = 0; q < n; ++q) {
    for (std::size_t p = 0; p < n; ++p) {
      const double cpq = c(p, q);
      if (cpq == 0.0) continue;
      const double* src = tensor.data() + p * rest;
      double* dst = out.data() + q * rest;
      for (std::size_t r = 0; r < rest; ++r) dst[r] += cpq * src[r];
    }
  }
  // Cycle: [q][nu][la][si] -> [nu][la][si][q].
  std::vector<double> cycled(tensor.size());
  for (std::size_t q = 0; q < n; ++q) {
    for (std::size_t r = 0; r < rest; ++r) {
      cycled[r * n + q] = out[q * rest + r];
    }
  }
  return cycled;
}

}  // namespace

Mp2Result run_mp2(const Molecule& molecule, const BasisSet& basis,
                  const ScfOptions& scf_options) {
  const ScfResult scf = run_rhf(molecule, basis, scf_options);
  if (!scf.converged) {
    throw std::invalid_argument("run_mp2: RHF reference did not converge");
  }

  const auto n = static_cast<std::size_t>(basis.function_count());
  const int n_occ = molecule.electron_count(scf_options.net_charge) / 2;
  const int n_virt = basis.function_count() - n_occ;
  Mp2Result result;
  result.total_energy = scf.energy;
  if (n_virt == 0) return result;  // no correlation space

  // Recover canonical orbitals from the converged Fock matrix.
  const Matrix s = overlap_matrix(basis);
  const Matrix x = linalg::inverse_sqrt(s);
  linalg::EigenResult eig =
      linalg::eigen_symmetric(linalg::congruence(x, scf.fock));
  const Matrix c = linalg::matmul(x, eig.vectors);
  const std::vector<double>& eps = eig.values;

  // AO ERI tensor -> MO basis via four quarter transformations.
  std::vector<double> mo = full_eri_tensor(basis);
  for (int quarter = 0; quarter < 4; ++quarter) {
    mo = quarter_transform(mo, c, n);
  }
  const auto at = [&mo, n](int p, int q, int r, int s2) {
    return mo[((static_cast<std::size_t>(p) * n +
                static_cast<std::size_t>(q)) *
                   n +
               static_cast<std::size_t>(r)) *
                  n +
              static_cast<std::size_t>(s2)];
  };

  // E(2) = sum_ijab (ia|jb) [2 (ia|jb) - (ib|ja)] / (ei + ej - ea - eb).
  double os = 0.0, ss = 0.0;
  for (int i = 0; i < n_occ; ++i) {
    for (int j = 0; j < n_occ; ++j) {
      for (int a = n_occ; a < basis.function_count(); ++a) {
        for (int b = n_occ; b < basis.function_count(); ++b) {
          const double iajb = at(i, a, j, b);
          const double ibja = at(i, b, j, a);
          const double denom =
              eps[static_cast<std::size_t>(i)] +
              eps[static_cast<std::size_t>(j)] -
              eps[static_cast<std::size_t>(a)] -
              eps[static_cast<std::size_t>(b)];
          os += iajb * iajb / denom;
          ss += iajb * (iajb - ibja) / denom;
        }
      }
    }
  }
  result.opposite_spin = os;
  result.same_spin = ss;
  result.correlation_energy = os + ss;
  result.total_energy = scf.energy + result.correlation_energy;
  return result;
}

}  // namespace emc::chem
