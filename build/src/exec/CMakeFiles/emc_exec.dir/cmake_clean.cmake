file(REMOVE_RECURSE
  "CMakeFiles/emc_exec.dir/schedulers.cpp.o"
  "CMakeFiles/emc_exec.dir/schedulers.cpp.o.d"
  "libemc_exec.a"
  "libemc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
