// Tests for the extended execution-model space: guided/trapezoid
// self-scheduling, the hierarchical two-level counter, hybrid
// static+dynamic execution, and victim-selection policies.

#include <gtest/gtest.h>

#include <numeric>

#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::sim;
using emc::lb::Assignment;

MachineConfig machine(int procs) {
  MachineConfig c;
  c.n_procs = procs;
  c.procs_per_node = 8;
  return c;
}

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  emc::Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = std::exp(rng.uniform(-9.0, -4.0));
  return costs;
}

std::int64_t total_tasks(const SimResult& r) {
  return std::accumulate(r.tasks_executed.begin(), r.tasks_executed.end(),
                         std::int64_t{0});
}

class ChunkPolicyTest : public ::testing::TestWithParam<ChunkPolicy> {};

TEST_P(ChunkPolicyTest, ExecutesEverythingOnce) {
  const auto costs = skewed_costs(700, 3);
  CounterOptions options;
  options.chunk = 2;
  options.policy = GetParam();
  const SimResult r = simulate_counter(machine(16), costs, options);
  EXPECT_EQ(total_tasks(r), 700);
  EXPECT_GT(r.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChunkPolicyTest,
                         ::testing::Values(ChunkPolicy::kFixed,
                                           ChunkPolicy::kGuided,
                                           ChunkPolicy::kTrapezoid));

TEST(GuidedTest, FewerGrabsThanFixedChunkOne) {
  const auto costs = skewed_costs(2000, 5);
  CounterOptions fixed;
  fixed.chunk = 1;
  CounterOptions guided;
  guided.chunk = 1;
  guided.policy = ChunkPolicy::kGuided;
  const SimResult rf = simulate_counter(machine(16), costs, fixed);
  const SimResult rg = simulate_counter(machine(16), costs, guided);
  // Guided's geometric chunk sizes need far fewer counter trips.
  EXPECT_LT(rg.counter_ops, rf.counter_ops / 4);
  EXPECT_EQ(total_tasks(rg), 2000);
}

TEST(TrapezoidTest, GrabsBetweenGuidedAndFixed) {
  const auto costs = skewed_costs(2000, 7);
  CounterOptions tss;
  tss.chunk = 1;
  tss.policy = ChunkPolicy::kTrapezoid;
  const SimResult r = simulate_counter(machine(16), costs, tss);
  EXPECT_EQ(total_tasks(r), 2000);
  // TSS's first chunk is n/(2P) = 62; grab count must be far below n.
  EXPECT_LT(r.counter_ops, 500);
  EXPECT_GT(r.counter_ops, 16);
}

TEST(HierarchicalCounterTest, ExecutesEverythingOnce) {
  const auto costs = skewed_costs(1500, 9);
  const SimResult r =
      simulate_hierarchical_counter(machine(64), costs, 64, 2);
  EXPECT_EQ(total_tasks(r), 1500);
}

TEST(HierarchicalCounterTest, RelievesGlobalContention) {
  // Many procs, tiny tasks: the flat counter serializes at the home
  // node; the two-level scheme must shrink average wait.
  const std::vector<double> costs(20000, 2e-7);
  MachineConfig c = machine(256);
  const SimResult flat = simulate_counter(c, costs, 1);
  const SimResult hier = simulate_hierarchical_counter(c, costs, 256, 1);
  EXPECT_EQ(total_tasks(hier), 20000);
  EXPECT_LT(hier.makespan, flat.makespan);
}

TEST(HierarchicalCounterTest, RejectsBadChunks) {
  const auto costs = skewed_costs(10, 1);
  EXPECT_THROW(simulate_hierarchical_counter(machine(4), costs, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_hierarchical_counter(machine(4), costs, 1, 0),
               std::invalid_argument);
}

TEST(HybridTest, FractionZeroEqualsStatic) {
  const auto costs = skewed_costs(400, 11);
  const auto lpt = emc::lb::lpt_assignment(costs, 8);
  const MachineConfig c = machine(8);
  const SimResult hybrid = simulate_hybrid(c, costs, lpt, 0.0);
  const SimResult fixed = simulate_static(c, costs, lpt);
  EXPECT_EQ(total_tasks(hybrid), 400);
  // Static phase identical; hybrid adds only the final empty counter
  // probe, which costs link latency.
  EXPECT_NEAR(hybrid.makespan, fixed.makespan, 1e-4);
}

TEST(HybridTest, FractionOneEqualsCounter) {
  const auto costs = skewed_costs(400, 13);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const MachineConfig c = machine(8);
  const SimResult hybrid = simulate_hybrid(c, costs, block, 1.0, 3);
  const SimResult counter = simulate_counter(c, costs, 3);
  EXPECT_EQ(total_tasks(hybrid), 400);
  EXPECT_NEAR(hybrid.makespan, counter.makespan, 1e-9);
}

TEST(HybridTest, TailRescuesBadStaticAssignment) {
  // Block assignment of rank-ordered (growing) costs is badly imbalanced;
  // a 30% dynamic tail must repair most of it.
  std::vector<double> costs(512);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = 1e-6 * static_cast<double>(i + 1);
  }
  const auto block = emc::lb::block_assignment(costs.size(), 16);
  const MachineConfig c = machine(16);
  const SimResult pure_static = simulate_static(c, costs, block);
  const SimResult hybrid30 = simulate_hybrid(c, costs, block, 0.3);
  const SimResult hybrid50 = simulate_hybrid(c, costs, block, 0.5);
  // The 30% tail can only fix the last procs' overload; the prefix of
  // the remaining procs bounds the gain. A 50% tail digs deeper.
  EXPECT_LT(hybrid30.makespan, 0.85 * pure_static.makespan);
  EXPECT_LT(hybrid50.makespan, hybrid30.makespan);
}

TEST(HybridTest, RejectsBadFraction) {
  const auto costs = skewed_costs(10, 1);
  const Assignment a(costs.size(), 0);
  EXPECT_THROW(simulate_hybrid(machine(2), costs, a, -0.1),
               std::invalid_argument);
  EXPECT_THROW(simulate_hybrid(machine(2), costs, a, 1.5),
               std::invalid_argument);
}

class VictimPolicyTest : public ::testing::TestWithParam<VictimPolicy> {};

TEST_P(VictimPolicyTest, ExecutesEverythingOnce) {
  const auto costs = skewed_costs(600, 17);
  const Assignment all_on_zero(costs.size(), 0);
  StealOptions options;
  options.victim = GetParam();
  const SimResult r =
      simulate_work_stealing(machine(32), costs, all_on_zero, options);
  EXPECT_EQ(total_tasks(r), 600);
  EXPECT_GT(r.steals, 0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, VictimPolicyTest,
                         ::testing::Values(VictimPolicy::kUniform,
                                           VictimPolicy::kNodeFirst,
                                           VictimPolicy::kRing));

TEST(VictimPolicyTest, NodeFirstReducesStealCostPerSteal) {
  // Work seeded across all nodes; node-first victims make the average
  // steal round trip cheaper than uniform selection.
  const auto costs = skewed_costs(4000, 19);
  MachineConfig c = machine(64);
  c.inter_node_latency = 10e-6;  // make remote theft clearly pricier
  const auto block = emc::lb::block_assignment(costs.size(), 64);

  StealOptions uniform;
  StealOptions local;
  local.victim = VictimPolicy::kNodeFirst;
  const SimResult ru = simulate_work_stealing(c, costs, block, uniform);
  const SimResult rl = simulate_work_stealing(c, costs, block, local);
  ASSERT_GT(ru.steal_attempts, 0);
  ASSERT_GT(rl.steal_attempts, 0);
  const double per_u =
      ru.steal_wait / static_cast<double>(ru.steal_attempts);
  const double per_l =
      rl.steal_wait / static_cast<double>(rl.steal_attempts);
  EXPECT_LT(per_l, per_u);
}

TEST(PersistenceTest, RebalancedRoundsAreOptimalStatic) {
  const auto costs = skewed_costs(600, 41);
  const auto block = emc::lb::block_assignment(costs.size(), 16);
  const MachineConfig c = machine(16);
  const auto rounds = simulate_persistence(c, costs, block, 4);
  ASSERT_EQ(rounds.size(), 4u);
  // Round 1 = the (bad) initial static run; rounds 2+ = LPT quality.
  const double lpt_makespan =
      simulate_static(c, costs, emc::lb::lpt_assignment(costs, 16))
          .makespan;
  EXPECT_GT(rounds[0].makespan, lpt_makespan);
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(rounds[i].makespan, lpt_makespan);
    EXPECT_EQ(total_tasks(rounds[i]), 600);
  }
}

TEST(PersistenceTest, RebalanceCostCharged) {
  const auto costs = skewed_costs(100, 43);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const auto free_rounds =
      simulate_persistence(machine(8), costs, block, 3, 0.0);
  const auto paid_rounds =
      simulate_persistence(machine(8), costs, block, 3, 0.5);
  EXPECT_NEAR(paid_rounds[1].makespan, free_rounds[1].makespan + 0.5,
              1e-12);
  EXPECT_DOUBLE_EQ(paid_rounds[0].makespan, free_rounds[0].makespan);
}

TEST(TraceTest, RecordsEveryTaskExactlyOnce) {
  const auto costs = skewed_costs(300, 29);
  MachineConfig c = machine(8);
  c.record_trace = true;
  const auto block = emc::lb::block_assignment(costs.size(), 8);

  for (const SimResult& r :
       {simulate_static(c, costs, block), simulate_counter(c, costs, 4),
        simulate_work_stealing(c, costs, block),
        simulate_hierarchical_counter(c, costs, 32, 2),
        simulate_hybrid(c, costs, block, 0.5)}) {
    std::size_t task_events = 0;
    for (const TraceEvent& ev : r.trace) {
      if (ev.type == TraceEventType::kTaskExec) ++task_events;
      EXPECT_GE(ev.proc, 0);
      EXPECT_LT(ev.proc, 8);
      EXPECT_LE(ev.start, ev.end);
      EXPECT_LE(ev.end, r.makespan + 1e-12);
    }
    EXPECT_EQ(task_events, costs.size());
  }
}

TEST(TraceTest, DisabledByDefault) {
  const auto costs = skewed_costs(50, 31);
  const auto block = emc::lb::block_assignment(costs.size(), 4);
  const SimResult r = simulate_static(machine(4), costs, block);
  EXPECT_TRUE(r.trace.empty());
}

TEST(TimelineTest, BinsIntegrateToUtilization) {
  const auto costs = skewed_costs(500, 33);
  MachineConfig c = machine(16);
  c.record_trace = true;
  c.task_overhead = 0.0;
  const auto block = emc::lb::block_assignment(costs.size(), 16);
  const SimResult r = simulate_static(c, costs, block);

  const auto timeline = utilization_timeline(r, 16, 50);
  ASSERT_EQ(timeline.size(), 50u);
  double mean = 0.0;
  for (double u : timeline) {
    EXPECT_GE(u, -1e-12);
    EXPECT_LE(u, 1.0 + 1e-12);
    mean += u;
  }
  mean /= 50.0;
  EXPECT_NEAR(mean, r.utilization(), 1e-9);
  // Static on skewed costs: full utilization at the start, decaying tail.
  EXPECT_GT(timeline.front(), 0.99);
  EXPECT_LT(timeline.back(), timeline.front());
}

TEST(TimelineTest, RequiresTrace) {
  SimResult r;
  r.makespan = 1.0;
  EXPECT_THROW(utilization_timeline(r, 4, 10), std::invalid_argument);
}

TEST(VictimPolicyTest, RingIsFullyDeterministic) {
  const auto costs = skewed_costs(500, 23);
  const Assignment all_on_zero(costs.size(), 0);
  StealOptions a, b;
  a.victim = b.victim = VictimPolicy::kRing;
  a.seed = 1;
  b.seed = 999;  // ring ignores the RNG for victim choice
  const SimResult ra =
      simulate_work_stealing(machine(16), costs, all_on_zero, a);
  const SimResult rb =
      simulate_work_stealing(machine(16), costs, all_on_zero, b);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.steals, rb.steals);
}

}  // namespace
