// Simulator-throughput driver: how fast is the simulator itself, and
// does the calendar-queue event core actually buy the P >= 10k regime?
//
// Every other bench asks what the *simulated machine* does; this one
// measures the simulator as a program — events per wall-clock second
// and peak RSS while replaying synthetic million-task workloads at up
// to P = 100k simulated procs. Two axes are swept:
//
//   scheduler:  heap (std::priority_queue oracle) vs calendar
//               (Brown's calendar queue, amortized O(1))
//   congestion: per-message (exact link booking) vs flow (aggregate
//               utilization approximation), on a crossbar fabric
//
// The workload is synthetic — task costs drawn uniformly from
// [0.5, 1.5) x a mean cost via the seeded Rng — because this bench
// stresses the event core, not the chemistry; the cost *distribution*
// is irrelevant to simulator throughput and a synthetic vector scales
// to millions of tasks instantly.
//
// Self-checks (exit nonzero on violation; the ctest smoke gate):
//   1. heap and calendar produce bitwise-identical SimResults on every
//      (model, P) cell — the determinism contract of EventQueue;
//   2. a P = 100k, 1M-task work-stealing run completes on the calendar
//      scheduler (the scale target of the event-core rewrite);
//   3. flow-mode congestion is deterministic and lands within
//      [0.1x, 3x] of the per-message makespan on the congestion cell (a
//      sanity envelope, not a precision claim: flow clamps utilization
//      at 95%, so it undercharges a deeply saturated link where exact
//      booking builds an unbounded queue — EXP-12 quantifies the error
//      vs saturation depth).
//
// Full mode additionally sweeps P up to 100k and prints/records the
// calendar-vs-heap events/sec ratio per cell (the >= 5x headline at
// P >= 10k lives in BENCH_simspeed.json, not in a CI assert: wall-clock
// ratios are hostware, smoke only gates correctness).
//
// Flags:
//   --smoke          small sweep + the three gates above (CI)
//   --mean-cost=S    mean synthetic task cost, sim-seconds (default 1e-5)
//   --report=PATH    JSON report (default BENCH_simspeed.json)
//   --seed=N         workload + steal seed (default 1)
//   --profile        enable the scoped-span profiler; prints the span
//                    table and embeds the summary in the report

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "net/topology.hpp"
#include "sim/simulators.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;
using namespace emc::sim;

struct Options {
  bool smoke = false;
  bool profile = false;
  double mean_cost = 1.0e-5;
  std::string report_path = "BENCH_simspeed.json";
  std::uint64_t seed = 1;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (parse_flag(arg, "mean-cost", &value)) {
      opt.mean_cost = std::stod(value);
    } else if (parse_flag(arg, "report", &value)) {
      opt.report_path = value;
    } else if (parse_flag(arg, "seed", &value)) {
      opt.seed = std::stoull(value);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

std::vector<double> synthetic_costs(std::int64_t n, double mean,
                                    std::uint64_t seed) {
  std::vector<double> costs(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (double& c : costs) c = rng.uniform(0.5, 1.5) * mean;
  return costs;
}

/// Strict bitwise equality of everything a simulation computes. Double
/// comparisons are intentionally exact: the scheduler knob must not
/// change results at all, not "up to rounding".
bool bitwise_equal(const SimResult& a, const SimResult& b,
                   std::string* why) {
  auto fail = [&](const std::string& field) {
    if (why != nullptr) *why = field;
    return false;
  };
  if (a.makespan != b.makespan) return fail("makespan");
  if (a.busy != b.busy) return fail("busy");
  if (a.tasks_executed != b.tasks_executed) return fail("tasks_executed");
  if (a.steals != b.steals) return fail("steals");
  if (a.steal_attempts != b.steal_attempts) return fail("steal_attempts");
  if (a.counter_ops != b.counter_ops) return fail("counter_ops");
  if (a.counter_wait != b.counter_wait) return fail("counter_wait");
  if (a.steal_wait != b.steal_wait) return fail("steal_wait");
  if (a.op_retries != b.op_retries) return fail("op_retries");
  if (a.net_messages != b.net_messages) return fail("net_messages");
  if (a.net_congested != b.net_congested) return fail("net_congested");
  if (a.net_bytes != b.net_bytes) return fail("net_bytes");
  if (a.net_link_wait != b.net_link_wait) return fail("net_link_wait");
  if (a.events_processed != b.events_processed) {
    return fail("events_processed");
  }
  if (a.trace.size() != b.trace.size()) return fail("trace size");
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const TraceEvent& x = a.trace[i];
    const TraceEvent& y = b.trace[i];
    if (x.type != y.type || x.proc != y.proc || x.peer != y.peer ||
        x.task != y.task || x.start != y.start || x.end != y.end) {
      return fail("trace[" + std::to_string(i) + "]");
    }
  }
  return true;
}

/// One timed simulation.
struct Timed {
  SimResult result;
  double wall_ms = 0.0;

  double events_per_sec() const {
    return wall_ms > 0.0
               ? static_cast<double>(result.events_processed) /
                     (wall_ms * 1e-3)
               : 0.0;
  }
};

template <typename F>
Timed timed_run(F&& run) {
  Timed t;
  const auto t0 = std::chrono::steady_clock::now();
  t.result = run();
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return t;
}

/// One (model, P, tasks) cell of the scheduler sweep.
struct Cell {
  std::string model;
  int procs = 0;
  std::int64_t tasks = 0;
  Timed heap;
  Timed calendar;
  bool identical = false;
  std::string mismatch;

  double speedup() const {
    return heap.wall_ms > 0.0 && calendar.wall_ms > 0.0
               ? heap.wall_ms / calendar.wall_ms
               : 0.0;
  }
};

/// Runs `model` under both schedulers on a fresh machine and checks the
/// results are bitwise identical.
template <typename F>
Cell run_cell(const std::string& model, int procs, std::int64_t tasks,
              std::span<const double> costs, F&& simulate) {
  Cell cell;
  cell.model = model;
  cell.procs = procs;
  cell.tasks = tasks;
  MachineConfig heap_cfg = bench::make_machine(procs);
  heap_cfg.scheduler = SchedulerKind::kBinaryHeap;
  MachineConfig cal_cfg = heap_cfg;
  cal_cfg.scheduler = SchedulerKind::kCalendarQueue;
  cell.heap = timed_run([&] { return simulate(heap_cfg, costs); });
  cell.calendar = timed_run([&] { return simulate(cal_cfg, costs); });
  cell.identical =
      bitwise_equal(cell.heap.result, cell.calendar.result,
                    &cell.mismatch);
  return cell;
}

std::vector<Cell> scheduler_sweep(const Options& opt,
                                  const std::vector<int>& proc_counts,
                                  std::int64_t tasks_per_proc,
                                  std::int64_t max_tasks) {
  std::vector<Cell> cells;
  for (int procs : proc_counts) {
    const std::int64_t tasks =
        std::min<std::int64_t>(max_tasks, tasks_per_proc * procs);
    const std::vector<double> costs =
        synthetic_costs(tasks, opt.mean_cost, opt.seed);
    const lb::Assignment initial =
        lb::block_assignment(costs.size(), procs);

    cells.push_back(run_cell(
        "counter", procs, tasks, costs,
        [&](const MachineConfig& m, std::span<const double> c) {
          return simulate_counter(m, c, /*chunk=*/1);
        }));
    cells.push_back(run_cell(
        "hier_counter", procs, tasks, costs,
        [&](const MachineConfig& m, std::span<const double> c) {
          return simulate_hierarchical_counter(m, c, /*node_chunk=*/64,
                                               /*proc_chunk=*/4);
        }));
    cells.push_back(run_cell(
        "work_stealing", procs, tasks, costs,
        [&](const MachineConfig& m, std::span<const double> c) {
          StealOptions steal;
          steal.seed = opt.seed + 7;
          return simulate_work_stealing(m, c, initial, steal);
        }));
    for (std::size_t i = cells.size() - 3; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      std::cout << "  P=" << cell.procs << " tasks=" << cell.tasks
                << "  " << cell.model << ": heap "
                << cell.heap.wall_ms << " ms, calendar "
                << cell.calendar.wall_ms << " ms ("
                << cell.speedup() << "x, "
                << cell.calendar.events_per_sec() / 1e6
                << " Mev/s), identical="
                << (cell.identical ? "yes" : "NO") << "\n";
    }
  }
  return cells;
}

/// The scale target: P = 100k procs, 1M tasks, work stealing on the
/// calendar scheduler.
struct ScaleRun {
  int procs = 0;
  std::int64_t tasks = 0;
  Timed run;
  std::int64_t peak_rss = 0;
};

ScaleRun scale_run(const Options& opt, int procs, std::int64_t tasks) {
  ScaleRun s;
  s.procs = procs;
  s.tasks = tasks;
  const std::vector<double> costs =
      synthetic_costs(tasks, opt.mean_cost, opt.seed);
  const lb::Assignment initial = lb::block_assignment(costs.size(), procs);
  MachineConfig machine = bench::make_machine(procs);
  machine.scheduler = SchedulerKind::kCalendarQueue;
  StealOptions steal;
  steal.seed = opt.seed + 7;
  s.run = timed_run([&] {
    return simulate_work_stealing(machine, costs, initial, steal);
  });
  s.peak_rss = bench::peak_rss_bytes();
  return s;
}

/// Per-message vs flow congestion on a crossbar fabric (counter model:
/// its fan-in to the counter home is the worst case for endpoint
/// contention, so the two modes genuinely diverge).
struct CongestionRun {
  int procs = 0;
  std::int64_t tasks = 0;
  Timed per_message;
  Timed flow;
  bool deterministic = false;

  double makespan_ratio() const {
    return per_message.result.makespan > 0.0
               ? flow.result.makespan / per_message.result.makespan
               : 0.0;
  }
  double speedup() const {
    return flow.wall_ms > 0.0 ? per_message.wall_ms / flow.wall_ms : 0.0;
  }
};

CongestionRun congestion_run(const Options& opt, int procs,
                             std::int64_t tasks) {
  CongestionRun c;
  c.procs = procs;
  c.tasks = tasks;
  const std::vector<double> costs =
      synthetic_costs(tasks, opt.mean_cost, opt.seed);

  MachineConfig machine = bench::make_machine(procs);
  machine.scheduler = SchedulerKind::kCalendarQueue;
  machine.network.topology = net::TopologyKind::kCrossbar;
  // Size the fabric so control traffic matters: one control message
  // costs ~a tenth of a mean task on its link.
  machine.network.link_bandwidth =
      static_cast<double>(machine.network.control_bytes) /
      (0.1 * opt.mean_cost);

  MachineConfig flow_machine = machine;
  flow_machine.network.congestion = net::CongestionMode::kFlow;

  c.per_message = timed_run(
      [&] { return simulate_counter(machine, costs, /*chunk=*/1); });
  c.flow = timed_run(
      [&] { return simulate_counter(flow_machine, costs, /*chunk=*/1); });
  const SimResult replay = simulate_counter(flow_machine, costs, 1);
  std::string why;
  c.deterministic = bitwise_equal(c.flow.result, replay, &why);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (opt.profile) emc::util::Profiler::global().set_enabled(true);

  std::cout << "##############################################\n"
            << "# bench_simspeed: simulator throughput\n"
            << "# claim: the calendar-queue event core sustains\n"
            << "#   datacenter-scale replays (P = 100k, millions of\n"
            << "#   tasks) that the binary-heap core cannot\n"
            << "# seed: " << opt.seed << "\n"
            << "##############################################\n";

  // --- Scheduler sweep --------------------------------------------------
  const std::vector<int> proc_counts =
      opt.smoke ? std::vector<int>{256, 4096}
                : std::vector<int>{1024, 4096, 10000, 40000, 100000};
  const std::int64_t tasks_per_proc = opt.smoke ? 16 : 20;
  const std::int64_t max_tasks = opt.smoke ? 100000 : 2000000;
  std::cout << "\nscheduler sweep (heap vs calendar):\n";
  const std::vector<Cell> cells =
      scheduler_sweep(opt, proc_counts, tasks_per_proc, max_tasks);

  bool all_identical = true;
  for (const Cell& cell : cells) {
    if (!cell.identical) {
      all_identical = false;
      std::cerr << "FAIL: " << cell.model << " P=" << cell.procs
                << " heap vs calendar differ in " << cell.mismatch
                << "\n";
    }
  }

  // --- Scale target -----------------------------------------------------
  const int scale_procs = 100000;
  const std::int64_t scale_tasks = 1000000;
  std::cout << "\nscale target (work stealing, calendar):\n";
  const ScaleRun scale = scale_run(opt, scale_procs, scale_tasks);
  std::cout << "  P=" << scale.procs << " tasks=" << scale.tasks << ": "
            << scale.run.wall_ms << " ms wall, "
            << scale.run.result.events_processed << " events ("
            << scale.run.events_per_sec() / 1e6 << " Mev/s), peak RSS "
            << static_cast<double>(scale.peak_rss) / (1024.0 * 1024.0)
            << " MiB\n";
  const bool scale_ok = scale.run.result.makespan > 0.0 &&
                        scale.run.result.events_processed >
                            scale.tasks;

  // --- Congestion modes -------------------------------------------------
  const int cong_procs = opt.smoke ? 512 : 2048;
  const std::int64_t cong_tasks = opt.smoke ? 20000 : 200000;
  std::cout << "\ncongestion modes (crossbar, counter model):\n";
  const CongestionRun cong = congestion_run(opt, cong_procs, cong_tasks);
  std::cout << "  P=" << cong.procs << ": per-message "
            << cong.per_message.wall_ms << " ms, flow "
            << cong.flow.wall_ms << " ms (" << cong.speedup()
            << "x); flow/per-message makespan ratio "
            << cong.makespan_ratio() << ", deterministic="
            << (cong.deterministic ? "yes" : "NO") << "\n";
  const bool cong_ok = cong.deterministic &&
                       cong.makespan_ratio() > 0.1 &&
                       cong.makespan_ratio() < 3.0;
  if (!cong.deterministic) {
    std::cerr << "FAIL: flow-mode congestion is not deterministic\n";
  } else if (!cong_ok) {
    std::cerr << "FAIL: flow/per-message makespan ratio "
              << cong.makespan_ratio() << " outside [0.1, 3]\n";
  }
  if (!scale_ok) {
    std::cerr << "FAIL: P=100k scale run did not complete sanely\n";
  }

  const bool passed = all_identical && scale_ok && cong_ok;

  // --- Report -----------------------------------------------------------
  std::ofstream out(opt.report_path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
    return 1;
  }
  {
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_simspeed",
                               opt.smoke ? "smoke" : "full", opt.seed);
    json.field("bench", "bench_simspeed");
    json.field("mode", opt.smoke ? "smoke" : "full");
    json.field("seed", opt.seed);
    json.field("mean_task_cost_s", opt.mean_cost);
    json.begin_array("scheduler_sweep");
    for (const Cell& cell : cells) {
      json.begin_object();
      json.field("model", cell.model);
      json.field("procs", cell.procs);
      json.field("tasks", cell.tasks);
      json.field("heap_wall_ms", cell.heap.wall_ms);
      json.field("calendar_wall_ms", cell.calendar.wall_ms);
      json.field("heap_events_per_sec", cell.heap.events_per_sec());
      json.field("calendar_events_per_sec",
                 cell.calendar.events_per_sec());
      json.field("events", cell.calendar.result.events_processed);
      json.field("calendar_speedup", cell.speedup());
      json.field("bitwise_identical", cell.identical);
      json.end_object();
    }
    json.end_array();
    json.begin_object("scale_run");
    json.field("model", "work_stealing");
    json.field("scheduler", "calendar");
    json.field("procs", scale.procs);
    json.field("tasks", scale.tasks);
    json.field("wall_ms", scale.run.wall_ms);
    json.field("events", scale.run.result.events_processed);
    json.field("events_per_sec", scale.run.events_per_sec());
    json.field("makespan_s", scale.run.result.makespan);
    json.field("steals", scale.run.result.steals);
    json.field("peak_rss_bytes", scale.peak_rss);
    json.end_object();
    json.begin_object("congestion");
    json.field("topology", "crossbar");
    json.field("model", "counter");
    json.field("procs", cong.procs);
    json.field("tasks", cong.tasks);
    json.field("per_message_wall_ms", cong.per_message.wall_ms);
    json.field("flow_wall_ms", cong.flow.wall_ms);
    json.field("per_message_makespan_s",
               cong.per_message.result.makespan);
    json.field("flow_makespan_s", cong.flow.result.makespan);
    json.field("makespan_ratio", cong.makespan_ratio());
    json.field("flow_speedup", cong.speedup());
    json.field("deterministic", cong.deterministic);
    json.end_object();
    json.begin_object("checks");
    json.field("all_bitwise_identical", all_identical);
    json.field("scale_run_ok", scale_ok);
    json.field("congestion_ok", cong_ok);
    json.field("passed", passed);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }
  out.close();
  std::cout << "\nwrote " << opt.report_path << "\n";

  // Self-check: the artifact must re-parse and carry a valid manifest,
  // or downstream bench_compare runs would reject it.
  {
    std::ifstream in(opt.report_path);
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const emc::util::JsonValue doc = emc::util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: report is not valid JSON: " << e.what() << "\n";
      return 1;
    }
  }

  if (opt.profile) {
    std::cout << "\nprofiler spans:\n";
    emc::util::Profiler::global().write_text(std::cout);
  }

  if (!passed) return 1;
  std::cout << "PASS\n";
  return 0;
}
