# Empty compiler generated dependencies file for test_chem_integrals.
# This may be replaced when dependencies are built.
