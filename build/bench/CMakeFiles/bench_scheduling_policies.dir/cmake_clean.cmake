file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduling_policies.dir/bench_scheduling_policies.cpp.o"
  "CMakeFiles/bench_scheduling_policies.dir/bench_scheduling_policies.cpp.o.d"
  "bench_scheduling_policies"
  "bench_scheduling_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduling_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
