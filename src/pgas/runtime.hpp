#pragma once

// Thread-backed PGAS runtime in the style of Global Arrays / ARMCI.
//
// The paper's kernel runs over Global Arrays: an SPMD process group with
// one-sided access to distributed data and an atomic global counter
// ("nxtval") for dynamic scheduling. This runtime reproduces those
// semantics with one std::thread per rank. A CommCostModel can inject
// artificial latency into remote operations so runtime overheads (steal
// round-trips, counter contention) remain visible even on shared memory.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "util/metrics.hpp"

namespace emc::pgas {

/// Latency model for one-sided operations, in nanoseconds. Remote means
/// "owned by another rank". Zero-initialized = free (pure shared memory).
struct CommCostModel {
  std::uint64_t local_ns = 0;       ///< local get/put/acc overhead
  std::uint64_t remote_ns = 0;      ///< remote operation base latency
  std::uint64_t per_byte_ns = 0;    ///< payload transfer cost
  std::uint64_t counter_ns = 0;     ///< global fetch-and-add round trip

  // Fault injection for one-sided operations. Each op attempt is dropped
  // with probability drop_prob; a dropped attempt wastes its round trip,
  // backs off exponentially (retry_backoff_ns * backoff_multiplier^k),
  // and is reissued. Drop decisions are a stateless hash of (fault_seed,
  // rank, op_seq, attempt) — no shared RNG state, so a given operation
  // stream replays identically. After max_attempts consecutive drops the
  // op times out with std::runtime_error. Faults never corrupt data:
  // only the attempt that goes through touches memory.
  double drop_prob = 0.0;           ///< per-attempt drop probability
  int max_attempts = 8;             ///< attempts before timeout throw
  std::uint64_t retry_backoff_ns = 200;  ///< base backoff before retry
  double backoff_multiplier = 2.0;  ///< exponential backoff growth
  std::uint64_t fault_seed = 0x5eedULL;  ///< hash seed for drop decisions

  std::uint64_t transfer_cost(bool remote, std::size_t bytes) const {
    return (remote ? remote_ns : local_ns) +
           per_byte_ns * static_cast<std::uint64_t>(bytes);
  }

  bool faults_enabled() const { return drop_prob > 0.0; }

  /// Derives the injected latencies from the same topology description
  /// the simulator's NetworkModel consumes (src/net), so the threaded
  /// runtime and the discrete-event simulator price remote operations
  /// consistently. remote_ns folds in the per-message overhead and the
  /// topology's mean inter-node hop latency; per_byte_ns is the mean
  /// route's serialization per byte, rounded to this model's integer-ns
  /// granularity; counter_ns is one remote round trip. A legacy-flat
  /// config maps to the plain intra/inter latencies with free bytes.
  /// Throws std::invalid_argument on a malformed config or rank counts.
  static CommCostModel from_topology(const net::NetworkConfig& network,
                                     int n_ranks, int ranks_per_node,
                                     double intra_latency_s = 0.3e-6,
                                     double inter_latency_s = 1.5e-6);
};

/// Busy-waits for the given simulated latency (no-op for 0).
void inject_delay(std::uint64_t nanoseconds);

/// Replays the drop/retry protocol for one one-sided operation, before
/// the operation itself runs: while the (fault_seed, rank, op_seq,
/// attempt) hash says "dropped", pays the wasted round trip
/// (`op_latency_ns`) plus exponential backoff and reissues. Returns the
/// number of retries performed (0 = clean first attempt). Throws
/// std::runtime_error if all max_attempts attempts are dropped — the
/// operation timed out. No-op returning 0 when faults are disabled.
int resolve_with_retries(const CommCostModel& cost, int rank,
                         std::uint64_t op_seq, std::uint64_t op_latency_ns);

class Runtime;

/// Per-rank handle passed to the SPMD body.
class Context {
 public:
  int rank() const { return rank_; }
  int size() const;
  void barrier();
  const CommCostModel& cost_model() const;

  /// Collective: element-wise sum of every rank's `data` in place, GA
  /// DGOP-style. All ranks must pass buffers of the same length; the
  /// call contains barriers (every rank must reach it).
  void all_reduce_sum(std::span<double> data);

  /// Collective: copies `data` from `root` to every rank's buffer.
  void broadcast(std::span<double> data, int root);

 private:
  friend class Runtime;
  Context(Runtime* rt, int rank) : runtime_(rt), rank_(rank) {}

  Runtime* runtime_;
  int rank_;
};

/// SPMD process group. `run` launches one thread per rank and blocks
/// until all return. The runtime may be reused for several runs.
class Runtime {
 public:
  explicit Runtime(int n_ranks, CommCostModel cost_model = {});

  int size() const { return n_ranks_; }
  const CommCostModel& cost_model() const { return cost_model_; }

  /// Attaches a metrics registry: barriers record per-rank wait time
  /// ("pgas/r<k>/barrier_wait_seconds", "pgas/r<k>/barriers") and
  /// GlobalCounter/GlobalArray users (see their set_metrics) share the
  /// same registry via metrics(). Counters are resolved here once, so
  /// per-operation recording is a relaxed atomic. nullptr detaches; the
  /// registry must outlive the runtime.
  void set_metrics(util::MetricsRegistry* registry);
  util::MetricsRegistry* metrics() const { return metrics_; }

  /// Executes `body(ctx)` on every rank concurrently. Exceptions thrown
  /// by any rank are captured and the first one is rethrown here after
  /// all ranks join.
  void run(const std::function<void(Context&)>& body);

 private:
  friend class Context;

  struct RankBarrierMetrics {
    util::Counter* barriers = nullptr;
    util::Gauge* wait_seconds = nullptr;
  };

  int n_ranks_;
  CommCostModel cost_model_;
  std::barrier<> barrier_;
  // Collective scratch: accumulation buffer guarded by a mutex between
  // the barriers of a collective call.
  std::mutex collective_mutex_;
  std::vector<double> collective_buffer_;
  util::MetricsRegistry* metrics_ = nullptr;
  std::vector<RankBarrierMetrics> rank_metrics_;
};

/// Global atomic counter with GA-nxtval semantics: fetch_add returns the
/// previous value. Latency injection models the remote round trip.
class GlobalCounter {
 public:
  explicit GlobalCounter(std::int64_t initial = 0) : value_(initial) {}

  /// Resolves "pgas/nxtval_ops", "pgas/nxtval_retries", and per-rank
  /// "pgas/r<k>/nxtval_ops" counters; rank-aware fetch_add calls record
  /// into both. The registry must outlive the counter.
  void attach_metrics(util::MetricsRegistry& registry, int n_ranks);

  /// With faults enabled in `cost`, the round trip may be dropped and
  /// retried with backoff (see resolve_with_retries); the fetch-add
  /// itself executes exactly once, after the protocol succeeds.
  std::int64_t fetch_add(std::int64_t delta, const CommCostModel& cost,
                         int rank = -1) {
    if (cost.faults_enabled()) {
      const std::uint64_t seq =
          fault_seq_.fetch_add(1, std::memory_order_relaxed);
      const int retries =
          resolve_with_retries(cost, rank, seq, cost.counter_ns);
      if (retries > 0 && retry_ops_ != nullptr) retry_ops_->add(retries);
    }
    inject_delay(cost.counter_ns);
    if (total_ops_ != nullptr) {
      total_ops_->add(1);
      if (rank >= 0 &&
          rank < static_cast<int>(rank_ops_.size())) {
        rank_ops_[static_cast<std::size_t>(rank)]->add(1);
      }
    }
    return value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::int64_t load() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_;
  // Monotone sequence feeding the drop-decision hash; shared across
  // ranks, so retry placement follows the actual interleaving while each
  // individual decision stays a pure function of (seed, rank, seq).
  std::atomic<std::uint64_t> fault_seq_{0};
  util::Counter* total_ops_ = nullptr;
  util::Counter* retry_ops_ = nullptr;
  std::vector<util::Counter*> rank_ops_;
};

}  // namespace emc::pgas
