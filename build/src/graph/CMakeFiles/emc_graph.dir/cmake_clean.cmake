file(REMOVE_RECURSE
  "CMakeFiles/emc_graph.dir/csr_graph.cpp.o"
  "CMakeFiles/emc_graph.dir/csr_graph.cpp.o.d"
  "CMakeFiles/emc_graph.dir/generators.cpp.o"
  "CMakeFiles/emc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/emc_graph.dir/hypergraph.cpp.o"
  "CMakeFiles/emc_graph.dir/hypergraph.cpp.o.d"
  "libemc_graph.a"
  "libemc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
