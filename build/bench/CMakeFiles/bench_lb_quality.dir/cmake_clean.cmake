file(REMOVE_RECURSE
  "CMakeFiles/bench_lb_quality.dir/bench_lb_quality.cpp.o"
  "CMakeFiles/bench_lb_quality.dir/bench_lb_quality.cpp.o.d"
  "bench_lb_quality"
  "bench_lb_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lb_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
