// EXP-4 — load-balance quality: semi-matching vs hypergraph partitioning
// vs the classical balancers, across core counts. The abstract's claim:
// semi-matching "has comparable performance to a traditional hypergraph-
// based partitioning implementation". Reports both makespan imbalance
// and the communication proxy (connectivity cut of the task hypergraph).

#include <iostream>

#include "bench_common.hpp"
#include "graph/hypergraph.hpp"
#include "lb/partition.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-4: balancer quality across core counts",
      "semi-matching comparable to hypergraph partitioning", model);

  const graph::Hypergraph hg = core::make_task_hypergraph(model);

  Table table({"procs", "balancer", "imbalance", "makespan_ms",
               "hg_cut", "balance_ms"});
  table.set_precision(3);

  for (int p : {16, 64, 256, 1024}) {
    core::ExperimentConfig config;
    config.machine.n_procs = p;
    for (const std::string& algo : core::balancer_names()) {
      const lb::BalanceResult r =
          core::balance_tasks(model, algo, p, config);
      const double imb = lb::imbalance(model.costs, r.assignment, p);
      const double ms = lb::makespan(model.costs, r.assignment, p);
      const std::vector<int> part(r.assignment.begin(), r.assignment.end());
      table.add_row({static_cast<std::int64_t>(p), algo, imb, ms * 1e3,
                     hg.connectivity_cut(part, p),
                     r.balance_seconds * 1e3});
    }
  }
  table.print(std::cout, "balancer quality (imbalance = max/mean load)");
  return 0;
}
