#pragma once

// Cross-request Fock-builder memo table.
//
// PR 1's shell-pair cache amortizes pair-table construction across the
// quartets of ONE Fock build; a server handling a stream of requests
// re-pays that construction for every request on the same chemistry.
// FockCache promotes the cache one level up: a bounded LRU memo table
// keyed by (molecule name, basis name) whose entries own the parsed
// Molecule, the built BasisSet, and a fully constructed FockBuilder
// (shell pairs + Schwarz bounds). Entries are immutable after
// construction and handed out as shared_ptr<const ...>, so any number of
// concurrent jobs can run builds off one entry (FockBuilder's const
// methods are stateless per call — see chem/fock.hpp) and eviction never
// invalidates an entry a job still holds.
//
// Lookups are single-flight: when several jobs miss on the same key at
// once, exactly one thread constructs the entry while the others block
// on a shared_future — so the miss count equals the number of DISTINCT
// keys built, deterministically, regardless of interleaving. Waiters on
// an in-flight build count as hits (the work was shared, not repeated).

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "chem/basis.hpp"
#include "chem/fock.hpp"
#include "chem/molecule.hpp"
#include "util/metrics.hpp"

namespace emc::serve {

/// One cached chemistry: geometry, basis, and the ready-to-run builder.
/// Heap-allocated exactly once and never moved, so the FockBuilder's
/// internal BasisSet pointer stays valid for the entry's lifetime.
struct FockCacheEntry {
  std::string molecule_name;
  std::string basis_name;
  chem::Molecule molecule;
  chem::BasisSet basis;
  std::unique_ptr<chem::FockBuilder> builder;
};

class FockCache {
 public:
  struct Stats {
    std::int64_t hits = 0;        ///< cache hits + in-flight waits
    std::int64_t misses = 0;      ///< entries actually constructed
    std::int64_t evictions = 0;   ///< entries dropped by LRU pressure
  };

  /// `capacity` bounds the number of RESIDENT entries (>= 1); in-flight
  /// constructions and entries still referenced by jobs live beyond it.
  /// When `metrics` is non-null the cache also publishes
  /// serve/cache_{hits,misses,evictions} counters and a
  /// serve/cache_entries gauge there (registry must outlive the cache).
  explicit FockCache(std::size_t capacity, double screen_threshold = 1e-10,
                     util::MetricsRegistry* metrics = nullptr);

  /// Returns the entry for (molecule, basis), constructing it on first
  /// use. Blocks if another thread is already constructing the same key.
  /// Throws std::invalid_argument (propagated from the molecule/basis
  /// catalogs) for unknown names; the failure is NOT cached.
  std::shared_ptr<const FockCacheEntry> get(const std::string& molecule,
                                            const std::string& basis);

  Stats stats() const;
  std::size_t size() const;       ///< resident entries
  std::size_t capacity() const { return capacity_; }
  double hit_rate() const;        ///< hits / (hits + misses), 0 when cold

 private:
  struct Resident {
    std::shared_ptr<const FockCacheEntry> entry;
    std::list<std::string>::iterator lru_pos;
  };

  std::shared_ptr<const FockCacheEntry> build_entry(
      const std::string& molecule, const std::string& basis) const;

  std::size_t capacity_;
  double screen_threshold_;
  util::Counter* hits_metric_ = nullptr;
  util::Counter* misses_metric_ = nullptr;
  util::Counter* evictions_metric_ = nullptr;
  util::Gauge* entries_metric_ = nullptr;

  mutable std::mutex mutex_;
  std::map<std::string, Resident> resident_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string,
           std::shared_future<std::shared_ptr<const FockCacheEntry>>>
      inflight_;
  Stats stats_;
};

}  // namespace emc::serve
