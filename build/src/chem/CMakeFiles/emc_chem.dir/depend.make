# Empty dependencies file for emc_chem.
# This may be replaced when dependencies are built.
