// Unit and property tests for the dense linear-algebra substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "linalg/factor.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace {

using emc::Rng;
using emc::linalg::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = emc::linalg::matmul(a.transposed(), a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityAndTrace) {
  const Matrix id = Matrix::identity(4);
  EXPECT_DOUBLE_EQ(id.trace(), 4.0);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(1);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_TRUE(a.transposed().transposed().almost_equal(a, 0.0));
}

TEST(MatrixTest, ArithmeticOps) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(MatrixTest, NormAndMaxAbs) {
  Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(MatrixTest, SymmetryCheck) {
  Matrix s{{1.0, 2.0}, {2.0, 3.0}};
  EXPECT_TRUE(s.is_symmetric(1e-14));
  s(0, 1) = 2.1;
  EXPECT_FALSE(s.is_symmetric(1e-3));
}

TEST(BlasTest, MatmulKnownResult) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = emc::linalg::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(BlasTest, GemmAgainstNaive) {
  Rng rng(2);
  const Matrix a = random_matrix(7, 5, rng);
  const Matrix b = random_matrix(5, 9, rng);
  Matrix c = random_matrix(7, 9, rng);
  Matrix expected = c;

  // Naive reference: C = 0.5*A*B + 2*C.
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 5; ++k) s += a(i, k) * b(k, j);
      expected(i, j) = 0.5 * s + 2.0 * expected(i, j);
    }
  }
  emc::linalg::gemm(0.5, a, b, 2.0, c);
  EXPECT_TRUE(c.almost_equal(expected, 1e-12));
}

TEST(BlasTest, MatmulIdentity) {
  Rng rng(3);
  const Matrix a = random_matrix(4, 4, rng);
  EXPECT_TRUE(emc::linalg::matmul(a, Matrix::identity(4))
                  .almost_equal(a, 1e-14));
}

TEST(BlasTest, MatvecAndDotAndAxpy) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> x{1.0, -1.0};
  const auto y = emc::linalg::matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);

  EXPECT_DOUBLE_EQ(emc::linalg::dot(x, y), 0.0);

  std::vector<double> z{1.0, 1.0};
  emc::linalg::axpy(2.0, x, z);
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], -1.0);
}

TEST(BlasTest, CongruenceTransform) {
  Rng rng(4);
  const Matrix x = random_matrix(3, 3, rng);
  const Matrix b = random_spd(3, rng);
  const Matrix direct = emc::linalg::congruence(x, b);
  const Matrix manual =
      emc::linalg::matmul(x.transposed(), emc::linalg::matmul(b, x));
  EXPECT_TRUE(direct.almost_equal(manual, 1e-12));
}

TEST(EigenTest, DiagonalMatrix) {
  const std::vector<double> d{3.0, -1.0, 2.0};
  const auto result = emc::linalg::eigen_symmetric(Matrix::diagonal(d));
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], -1.0, 1e-12);
  EXPECT_NEAR(result.values[1], 2.0, 1e-12);
  EXPECT_NEAR(result.values[2], 3.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const auto result = emc::linalg::eigen_symmetric(m);
  EXPECT_NEAR(result.values[0], 1.0, 1e-12);
  EXPECT_NEAR(result.values[1], 3.0, 1e-12);
}

TEST(EigenTest, NonSymmetricThrows) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(emc::linalg::eigen_symmetric(m), std::invalid_argument);
}

class EigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, ReconstructionAndOrthogonality) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto n = static_cast<std::size_t>(3 + GetParam() % 8);
  Matrix a = random_matrix(n, n, rng);
  a += a.transposed();  // symmetrize

  const auto result = emc::linalg::eigen_symmetric(a);
  const Matrix& v = result.vectors;

  // V^T V = I.
  EXPECT_TRUE(emc::linalg::matmul(v.transposed(), v)
                  .almost_equal(Matrix::identity(n), 1e-9));

  // V D V^T = A.
  const Matrix d = Matrix::diagonal(result.values);
  const Matrix rebuilt =
      emc::linalg::matmul(v, emc::linalg::matmul(d, v.transposed()));
  EXPECT_TRUE(rebuilt.almost_equal(a, 1e-9));

  // Eigenvalues sorted ascending.
  for (std::size_t i = 1; i < result.values.size(); ++i) {
    EXPECT_LE(result.values[i - 1], result.values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenPropertyTest,
                         ::testing::Range(1, 13));

TEST(InverseSqrtTest, SquaresToInverse) {
  Rng rng(5);
  const Matrix s = random_spd(5, rng);
  const Matrix x = emc::linalg::inverse_sqrt(s);
  // X S X = I.
  const Matrix probe =
      emc::linalg::matmul(x, emc::linalg::matmul(s, x));
  EXPECT_TRUE(probe.almost_equal(Matrix::identity(5), 1e-8));
}

TEST(InverseSqrtTest, RejectsIndefinite) {
  Matrix m{{1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW(emc::linalg::inverse_sqrt(m), std::runtime_error);
}

TEST(CholeskyTest, FactorReassembles) {
  Rng rng(6);
  const Matrix a = random_spd(6, rng);
  const Matrix l = emc::linalg::cholesky(a);
  EXPECT_TRUE(emc::linalg::matmul(l, l.transposed()).almost_equal(a, 1e-10));
  // L is lower triangular.
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = r + 1; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(l(r, c), 0.0);
    }
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix m{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(emc::linalg::cholesky(m), std::runtime_error);
}

class SolvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolvePropertyTest, LuSolvesRandomSystems) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const auto n = static_cast<std::size_t>(2 + GetParam());
  const Matrix a = random_spd(n, rng);  // well-conditioned
  std::vector<double> b(n);
  for (auto& x : b) x = rng.uniform(-2.0, 2.0);

  const auto x = emc::linalg::solve(a, b);
  const auto ax = emc::linalg::matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolvePropertyTest, ::testing::Range(1, 10));

TEST(LuTest, SingularThrows) {
  Matrix m{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(emc::linalg::lu_decompose(m), std::runtime_error);
}

TEST(LuTest, DeterminantKnown) {
  Matrix m{{2.0, 0.0, 0.0}, {0.0, 3.0, 0.0}, {0.0, 0.0, 4.0}};
  EXPECT_NEAR(emc::linalg::determinant(m), 24.0, 1e-12);
  Matrix swapped{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(emc::linalg::determinant(swapped), -1.0, 1e-12);
}

}  // namespace
