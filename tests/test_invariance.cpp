// Physics property tests: the total energy and every scheduling-relevant
// derived quantity must be invariant under rigid translation and
// rotation of the molecule. These exercise every angular-momentum branch
// of the integral engine at once (a sign or index bug in the Hermite
// recurrences breaks rotation invariance immediately for p/d shells).

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "chem/basis.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"
#include "core/calibration.hpp"
#include "core/task_model.hpp"

namespace {

using namespace emc::chem;

Molecule translated(const Molecule& m, double dx, double dy, double dz) {
  Molecule out;
  for (const Atom& a : m.atoms()) {
    out.add_atom(a.z, a.xyz[0] + dx, a.xyz[1] + dy, a.xyz[2] + dz);
  }
  return out;
}

Molecule rotated(const Molecule& m, double alpha, double beta) {
  const double ca = std::cos(alpha), sa = std::sin(alpha);
  const double cb = std::cos(beta), sb = std::sin(beta);
  Molecule out;
  for (const Atom& a : m.atoms()) {
    // Rz(alpha) then Ry(beta).
    const double x1 = ca * a.xyz[0] - sa * a.xyz[1];
    const double y1 = sa * a.xyz[0] + ca * a.xyz[1];
    const double z1 = a.xyz[2];
    out.add_atom(a.z, cb * x1 + sb * z1, y1, -sb * x1 + cb * z1);
  }
  return out;
}

double rhf_energy(const Molecule& m, const std::string& basis_name) {
  const BasisSet bs = BasisSet::build(m, basis_name);
  const ScfResult r = run_rhf(m, bs);
  EXPECT_TRUE(r.converged);
  return r.energy;
}

class InvarianceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(InvarianceTest, EnergyInvariantUnderTranslation) {
  const Molecule base = make_water();
  const double e0 = rhf_energy(base, GetParam());
  const double e1 =
      rhf_energy(translated(base, 3.7, -1.2, 9.4), GetParam());
  EXPECT_NEAR(e0, e1, 1e-8);
}

TEST_P(InvarianceTest, EnergyInvariantUnderRotation) {
  const Molecule base = make_water();
  const double e0 = rhf_energy(base, GetParam());
  const double e1 = rhf_energy(rotated(base, 0.83, -1.91), GetParam());
  EXPECT_NEAR(e0, e1, 1e-8);
}

// 6-31g* includes d shells: rotation invariance exercises every l <= 2
// branch of the Hermite recurrences.
INSTANTIATE_TEST_SUITE_P(Bases, InvarianceTest,
                         ::testing::Values("sto-3g", "6-31g", "6-31g*"));

TEST(InvarianceTest, DipoleMagnitudeInvariantUnderRotation) {
  const Molecule base = make_water();
  const Molecule rot = rotated(base, 1.2, 0.4);
  const BasisSet b0 = BasisSet::build(base, "sto-3g");
  const BasisSet b1 = BasisSet::build(rot, "sto-3g");
  const ScfResult r0 = run_rhf(base, b0);
  const ScfResult r1 = run_rhf(rot, b1);
  const Vec3 m0 = dipole_moment(r0.density, b0, base);
  const Vec3 m1 = dipole_moment(r1.density, b1, rot);
  const double n0 =
      std::sqrt(m0[0] * m0[0] + m0[1] * m0[1] + m0[2] * m0[2]);
  const double n1 =
      std::sqrt(m1[0] * m1[0] + m1[1] * m1[1] + m1[2] * m1[2]);
  EXPECT_NEAR(n0, n1, 1e-7);
}

TEST(InvarianceTest, TaskCostsInvariantUnderTranslation) {
  // The scheduling workload derived from a molecule must not depend on
  // where the molecule sits in space.
  using emc::core::build_task_model;
  const auto a = build_task_model(make_water_cluster(2));
  const auto b = build_task_model(
      translated(make_water_cluster(2), -5.0, 2.0, 11.0));
  ASSERT_EQ(a.costs.size(), b.costs.size());
  for (std::size_t t = 0; t < a.costs.size(); ++t) {
    EXPECT_NEAR(a.costs[t], b.costs[t], 1e-9 * (1.0 + a.costs[t]));
  }
}

TEST(CalibrationTest, RecoversExactScale) {
  const std::vector<double> est{1.0, 2.0, 3.0, 4.0};
  std::vector<double> meas;
  for (double e : est) meas.push_back(2.5 * e);
  const auto report = emc::core::calibrate_cost_model(est, meas);
  EXPECT_NEAR(report.scale, 2.5, 1e-12);
  EXPECT_NEAR(report.pearson, 1.0, 1e-12);
  EXPECT_NEAR(report.spearman, 1.0, 1e-12);
  EXPECT_EQ(report.samples, 4u);
}

TEST(CalibrationTest, DetectsAnticorrelation) {
  const std::vector<double> est{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> meas{4.0, 3.0, 2.0, 1.0};
  const auto report = emc::core::calibrate_cost_model(est, meas);
  EXPECT_LT(report.pearson, -0.99);
  EXPECT_LT(report.spearman, -0.99);
}

TEST(CalibrationTest, RejectsBadInput) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(emc::core::calibrate_cost_model(a, b),
               std::invalid_argument);
  EXPECT_THROW(emc::core::calibrate_cost_model({}, {}),
               std::invalid_argument);
}

TEST(CalibrationTest, RealKernelCalibrationIsTight) {
  using emc::core::build_task_model;
  using emc::core::TaskModelOptions;
  TaskModelOptions measured_opts;
  measured_opts.measure_costs = true;
  const auto measured = build_task_model("water2", measured_opts);

  TaskModelOptions analytic_opts;
  analytic_opts.analytic_cost_scale = 1.0;  // raw units
  const auto analytic = build_task_model("water2", analytic_opts);

  const auto report =
      emc::core::calibrate_cost_model(analytic.costs, measured.costs);
  EXPECT_GT(report.pearson, 0.7);
  EXPECT_GT(report.spearman, 0.85);
  EXPECT_GT(report.scale, 0.0);
}

}  // namespace
