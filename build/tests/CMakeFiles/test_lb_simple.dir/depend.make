# Empty dependencies file for test_lb_simple.
# This may be replaced when dependencies are built.
