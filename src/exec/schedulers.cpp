#include "exec/schedulers.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>

#include "exec/ws_deque.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::exec {

std::int64_t ExecutionStats::total_tasks() const {
  std::int64_t n = 0;
  for (const auto& r : ranks) n += r.tasks_executed;
  return n;
}

std::int64_t ExecutionStats::total_steals() const {
  std::int64_t n = 0;
  for (const auto& r : ranks) n += r.steals;
  return n;
}

double ExecutionStats::utilization() const {
  if (ranks.empty() || wall_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& r : ranks) busy += r.busy_seconds;
  return busy / (wall_seconds * static_cast<double>(ranks.size()));
}

namespace {

void check_task_count(std::int64_t n_tasks) {
  if (n_tasks < 0) throw std::invalid_argument("scheduler: n_tasks < 0");
}

}  // namespace

ExecutionStats run_static(pgas::Runtime& runtime, std::int64_t n_tasks,
                          const lb::Assignment& assignment,
                          const TaskBody& body) {
  check_task_count(n_tasks);
  if (static_cast<std::int64_t>(assignment.size()) != n_tasks) {
    throw std::invalid_argument("run_static: assignment size mismatch");
  }
  lb::validate_assignment(assignment, runtime.size());

  ExecutionStats stats;
  stats.ranks.resize(static_cast<std::size_t>(runtime.size()));
  emc::Timer wall;

  runtime.run([&](pgas::Context& ctx) {
    RankStats& mine = stats.ranks[static_cast<std::size_t>(ctx.rank())];
    emc::Timer busy;
    for (std::int64_t t = 0; t < n_tasks; ++t) {
      if (assignment[static_cast<std::size_t>(t)] != ctx.rank()) continue;
      busy.reset();
      body(t, ctx.rank());
      mine.busy_seconds += busy.seconds();
      ++mine.tasks_executed;
    }
  });

  stats.wall_seconds = wall.seconds();
  return stats;
}

ExecutionStats run_counter(pgas::Runtime& runtime, std::int64_t n_tasks,
                           std::int64_t chunk, const TaskBody& body) {
  check_task_count(n_tasks);
  if (chunk < 1) throw std::invalid_argument("run_counter: chunk < 1");

  ExecutionStats stats;
  stats.ranks.resize(static_cast<std::size_t>(runtime.size()));
  pgas::GlobalCounter counter(0);
  if (runtime.metrics() != nullptr) {
    counter.attach_metrics(*runtime.metrics(), runtime.size());
  }
  std::atomic<bool> aborted{false};
  emc::Timer wall;

  runtime.run([&](pgas::Context& ctx) {
    RankStats& mine = stats.ranks[static_cast<std::size_t>(ctx.rank())];
    emc::Timer busy;
    while (!aborted.load(std::memory_order_relaxed)) {
      const std::int64_t first =
          counter.fetch_add(chunk, ctx.cost_model(), ctx.rank());
      ++mine.counter_ops;
      if (first >= n_tasks) break;
      const std::int64_t last = std::min(first + chunk, n_tasks);
      for (std::int64_t t = first; t < last; ++t) {
        busy.reset();
        try {
          body(t, ctx.rank());
        } catch (...) {
          // Unblock the other ranks before propagating.
          aborted.store(true, std::memory_order_relaxed);
          throw;
        }
        mine.busy_seconds += busy.seconds();
        ++mine.tasks_executed;
      }
    }
  });

  stats.wall_seconds = wall.seconds();
  return stats;
}

ExecutionStats run_work_stealing(pgas::Runtime& runtime,
                                 std::int64_t n_tasks,
                                 const lb::Assignment& initial,
                                 const TaskBody& body,
                                 const WorkStealingOptions& options,
                                 std::vector<int>* executed_by) {
  check_task_count(n_tasks);
  if (static_cast<std::int64_t>(initial.size()) != n_tasks) {
    throw std::invalid_argument("run_work_stealing: assignment mismatch");
  }
  const int n_ranks = runtime.size();
  lb::validate_assignment(initial, n_ranks);

  ExecutionStats stats;
  stats.ranks.resize(static_cast<std::size_t>(n_ranks));
  if (executed_by != nullptr) {
    executed_by->assign(static_cast<std::size_t>(n_tasks), -1);
  }

  // One deque per rank, each able to hold every task (steals can migrate
  // arbitrarily many tasks to one rank).
  std::vector<std::unique_ptr<WsDeque>> deques;
  deques.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    deques.push_back(std::make_unique<WsDeque>(
        static_cast<std::size_t>(std::max<std::int64_t>(n_tasks, 1))));
  }
  std::atomic<std::int64_t> remaining(n_tasks);
  std::atomic<bool> aborted{false};
  emc::Timer wall;

  runtime.run([&](pgas::Context& ctx) {
    const int rank = ctx.rank();
    RankStats& mine = stats.ranks[static_cast<std::size_t>(rank)];
    WsDeque& my_deque = *deques[static_cast<std::size_t>(rank)];
    emc::Rng rng(options.seed ^
                 (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rank + 1)));

    // Seed the deque with this rank's initial tasks (reverse order so
    // pop() executes them in ascending index order).
    for (std::int64_t t = n_tasks - 1; t >= 0; --t) {
      if (initial[static_cast<std::size_t>(t)] == rank) my_deque.push(t);
    }
    ctx.barrier();

    emc::Timer busy;
    auto execute = [&](std::int64_t t) {
      busy.reset();
      try {
        body(t, rank);
      } catch (...) {
        // Unblock spinning thieves before propagating.
        aborted.store(true, std::memory_order_relaxed);
        throw;
      }
      mine.busy_seconds += busy.seconds();
      ++mine.tasks_executed;
      if (executed_by != nullptr) {
        (*executed_by)[static_cast<std::size_t>(t)] = rank;
      }
      remaining.fetch_sub(1, std::memory_order_relaxed);
    };

    while (remaining.load(std::memory_order_relaxed) > 0 &&
           !aborted.load(std::memory_order_relaxed)) {
      if (auto t = my_deque.pop()) {
        execute(*t);
        continue;
      }
      if (n_ranks == 1) continue;
      // Idle: pick a random victim and attempt a steal round trip.
      const int victim = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(n_ranks - 1)));
      const int victim_rank = victim >= rank ? victim + 1 : victim;
      WsDeque& vd = *deques[static_cast<std::size_t>(victim_rank)];
      ++mine.steal_attempts;
      pgas::inject_delay(ctx.cost_model().remote_ns);

      if (auto stolen = vd.steal()) {
        ++mine.steals;
        if (options.steal_half) {
          // Migrate up to half of the victim's remaining queue, then run
          // the first stolen task.
          std::int64_t extra = vd.size_estimate() / 2;
          while (extra-- > 0) {
            if (auto more = vd.steal()) {
              my_deque.push(*more);
            } else {
              break;
            }
          }
        }
        execute(*stolen);
      }
    }
  });

  stats.wall_seconds = wall.seconds();
  return stats;
}

std::vector<ExecutionStats> run_retentive_work_stealing(
    pgas::Runtime& runtime, std::int64_t n_tasks,
    const lb::Assignment& initial, const TaskBody& body, int iterations,
    const WorkStealingOptions& options) {
  std::vector<ExecutionStats> per_round;
  lb::Assignment current = initial;
  std::vector<int> executed_by;
  for (int round = 0; round < iterations; ++round) {
    per_round.push_back(run_work_stealing(runtime, n_tasks, current, body,
                                          options, &executed_by));
    // Retention: next round starts where the steals moved the work.
    current.assign(executed_by.begin(), executed_by.end());
  }
  return per_round;
}

}  // namespace emc::exec
