#include "chem/eri.hpp"

#include <cmath>

#include "chem/constants.hpp"
#include "chem/integrals.hpp"

namespace emc::chem {

double EriBlock::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

namespace {

/// 2 pi^{5/2}, the universal ERI prefactor numerator.
constexpr double kTwoPiToFiveHalves = 34.986836655249725;

/// Primitive quartets whose bound product (see PrimitivePairData::bound)
/// falls below this are skipped. Chosen so that the summed omission error
/// stays orders of magnitude below the 1e-12 accuracy the property tests
/// demand and the 1e-10 Eh SCF reproducibility requirement.
constexpr double kPrimQuartetPrune = 1e-17;

/// Accumulates the UNNORMALIZED contracted quartet (ab|cd) of two cached
/// pairs into `block`. Callers apply the per-component contracted norms
/// they need (all of them for a full quartet; only the diagonal for the
/// Schwarz bounds).
void accumulate_quartet(const ShellPairData& bra, const ShellPairData& ket,
                        EriBlock& block) {
  const auto& ca = bra.comps_a;
  const auto& cb = bra.comps_b;
  const auto& cc_ = ket.comps_a;
  const auto& cd = ket.comps_b;
  const int lab = bra.la + bra.lb;
  const int lcd = ket.la + ket.lb;
  HermiteR rtuv(lab + lcd);

  for (const PrimitivePairData& bp : bra.prims) {
    for (const PrimitivePairData& kp : ket.prims) {
      if (bp.bound * kp.bound < kPrimQuartetPrune) continue;
      const double p = bp.p;
      const double q = kp.p;
      const double alpha = p * q / (p + q);
      const Vec3 pq{bp.center[0] - kp.center[0],
                    bp.center[1] - kp.center[1],
                    bp.center[2] - kp.center[2]};
      rtuv.recompute(alpha, pq);
      const double pref = kTwoPiToFiveHalves * bp.coeff_over_p *
                          kp.coeff_over_p / std::sqrt(p + q);

      for (std::size_t ia = 0; ia < ca.size(); ++ia) {
        for (std::size_t ib = 0; ib < cb.size(); ++ib) {
          const auto& A = ca[ia];
          const auto& B = cb[ib];
          for (std::size_t ic = 0; ic < cc_.size(); ++ic) {
            for (std::size_t id = 0; id < cd.size(); ++id) {
              const auto& C = cc_[ic];
              const auto& D = cd[id];
              double sum = 0.0;
              for (int t = 0; t <= A.lx + B.lx; ++t) {
                const double et = bp.ex(A.lx, B.lx, t);
                if (et == 0.0) continue;
                for (int u = 0; u <= A.ly + B.ly; ++u) {
                  const double eu = bp.ey(A.ly, B.ly, u);
                  if (eu == 0.0) continue;
                  for (int v = 0; v <= A.lz + B.lz; ++v) {
                    const double ev = bp.ez(A.lz, B.lz, v);
                    if (ev == 0.0) continue;
                    double inner = 0.0;
                    for (int tau = 0; tau <= C.lx + D.lx; ++tau) {
                      const double ft = kp.ex(C.lx, D.lx, tau);
                      if (ft == 0.0) continue;
                      for (int nu = 0; nu <= C.ly + D.ly; ++nu) {
                        const double fu = kp.ey(C.ly, D.ly, nu);
                        if (fu == 0.0) continue;
                        for (int phi = 0; phi <= C.lz + D.lz; ++phi) {
                          const double fv = kp.ez(C.lz, D.lz, phi);
                          if (fv == 0.0) continue;
                          const double sign =
                              ((tau + nu + phi) % 2 == 0) ? 1.0 : -1.0;
                          inner += sign * ft * fu * fv *
                                   rtuv(t + tau, u + nu, v + phi);
                        }
                      }
                    }
                    sum += et * eu * ev * inner;
                  }
                }
              }
              block(static_cast<int>(ia), static_cast<int>(ib),
                    static_cast<int>(ic), static_cast<int>(id)) +=
                  pref * sum;
            }
          }
        }
      }
    }
  }
}

}  // namespace

EriBlock eri_shell_quartet(const ShellPairData& bra,
                           const ShellPairData& ket) {
  EriBlock block(bra.na(), bra.nb(), ket.na(), ket.nb());
  accumulate_quartet(bra, ket, block);
  for (std::size_t ia = 0; ia < bra.norm_a.size(); ++ia) {
    for (std::size_t ib = 0; ib < bra.norm_b.size(); ++ib) {
      const double nab = bra.norm_a[ia] * bra.norm_b[ib];
      for (std::size_t ic = 0; ic < ket.norm_a.size(); ++ic) {
        for (std::size_t id = 0; id < ket.norm_b.size(); ++id) {
          block(static_cast<int>(ia), static_cast<int>(ib),
                static_cast<int>(ic), static_cast<int>(id)) *=
              nab * ket.norm_a[ic] * ket.norm_b[id];
        }
      }
    }
  }
  return block;
}

EriBlock eri_shell_quartet(const Shell& sa, const Shell& sb, const Shell& sc,
                           const Shell& sd) {
  return eri_shell_quartet(make_shell_pair(sa, sb), make_shell_pair(sc, sd));
}

EriBlock eri_shell_quartet_direct(const Shell& sa, const Shell& sb,
                                  const Shell& sc, const Shell& sd) {
  const auto ca = cartesian_components(sa.l);
  const auto cb = cartesian_components(sb.l);
  const auto cc_ = cartesian_components(sc.l);
  const auto cd = cartesian_components(sd.l);
  EriBlock block(static_cast<int>(ca.size()), static_cast<int>(cb.size()),
                 static_cast<int>(cc_.size()), static_cast<int>(cd.size()));

  const int lab = sa.l + sb.l;
  const int lcd = sc.l + sd.l;

  for (std::size_t p1 = 0; p1 < sa.exponents.size(); ++p1) {
    const double a = sa.exponents[p1];
    for (std::size_t p2 = 0; p2 < sb.exponents.size(); ++p2) {
      const double b = sb.exponents[p2];
      const double p = a + b;
      const double cab = sa.coefficients[p1] * sb.coefficients[p2];
      const Vec3 pctr{(a * sa.center[0] + b * sb.center[0]) / p,
                      (a * sa.center[1] + b * sb.center[1]) / p,
                      (a * sa.center[2] + b * sb.center[2]) / p};
      const HermiteE e1x(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
      const HermiteE e1y(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
      const HermiteE e1z(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);

      for (std::size_t p3 = 0; p3 < sc.exponents.size(); ++p3) {
        const double c = sc.exponents[p3];
        for (std::size_t p4 = 0; p4 < sd.exponents.size(); ++p4) {
          const double d = sd.exponents[p4];
          const double q = c + d;
          const double ccd = sc.coefficients[p3] * sd.coefficients[p4];
          const Vec3 qctr{(c * sc.center[0] + d * sd.center[0]) / q,
                          (c * sc.center[1] + d * sd.center[1]) / q,
                          (c * sc.center[2] + d * sd.center[2]) / q};
          const HermiteE e2x(sc.l, sd.l, c, d, sc.center[0], sd.center[0]);
          const HermiteE e2y(sc.l, sd.l, c, d, sc.center[1], sd.center[1]);
          const HermiteE e2z(sc.l, sd.l, c, d, sc.center[2], sd.center[2]);

          const double alpha = p * q / (p + q);
          const Vec3 pq{pctr[0] - qctr[0], pctr[1] - qctr[1],
                        pctr[2] - qctr[2]};
          const HermiteR rtuv(lab + lcd, alpha, pq,
                              /*reference_boys=*/true);
          const double pref = 2.0 * std::pow(kPi, 2.5) /
                              (p * q * std::sqrt(p + q)) * cab * ccd;

          for (std::size_t ia = 0; ia < ca.size(); ++ia) {
            for (std::size_t ib = 0; ib < cb.size(); ++ib) {
              const auto& A = ca[ia];
              const auto& B = cb[ib];
              for (std::size_t ic = 0; ic < cc_.size(); ++ic) {
                for (std::size_t id = 0; id < cd.size(); ++id) {
                  const auto& C = cc_[ic];
                  const auto& D = cd[id];
                  double sum = 0.0;
                  for (int t = 0; t <= A.lx + B.lx; ++t) {
                    const double et = e1x(A.lx, B.lx, t);
                    if (et == 0.0) continue;
                    for (int u = 0; u <= A.ly + B.ly; ++u) {
                      const double eu = e1y(A.ly, B.ly, u);
                      if (eu == 0.0) continue;
                      for (int v = 0; v <= A.lz + B.lz; ++v) {
                        const double ev = e1z(A.lz, B.lz, v);
                        if (ev == 0.0) continue;
                        double inner = 0.0;
                        for (int tau = 0; tau <= C.lx + D.lx; ++tau) {
                          const double ft = e2x(C.lx, D.lx, tau);
                          if (ft == 0.0) continue;
                          for (int nu = 0; nu <= C.ly + D.ly; ++nu) {
                            const double fu = e2y(C.ly, D.ly, nu);
                            if (fu == 0.0) continue;
                            for (int phi = 0; phi <= C.lz + D.lz; ++phi) {
                              const double fv = e2z(C.lz, D.lz, phi);
                              if (fv == 0.0) continue;
                              const double sign =
                                  ((tau + nu + phi) % 2 == 0) ? 1.0 : -1.0;
                              inner += sign * ft * fu * fv *
                                       rtuv(t + tau, u + nu, v + phi);
                            }
                          }
                        }
                        sum += et * eu * ev * inner;
                      }
                    }
                  }
                  block(static_cast<int>(ia), static_cast<int>(ib),
                        static_cast<int>(ic), static_cast<int>(id)) +=
                      pref * sum;
                }
              }
            }
          }
        }
      }
    }
  }

  // Per-component contracted normalization.
  auto norms = [](const Shell& s) {
    const auto comps = cartesian_components(s.l);
    std::vector<double> n(comps.size());
    for (std::size_t i = 0; i < comps.size(); ++i) {
      n[i] = s.component_norm(comps[i].lx, comps[i].ly, comps[i].lz);
    }
    return n;
  };
  const auto na = norms(sa), nb = norms(sb), nc = norms(sc), nd = norms(sd);
  for (std::size_t ia = 0; ia < na.size(); ++ia) {
    for (std::size_t ib = 0; ib < nb.size(); ++ib) {
      for (std::size_t ic = 0; ic < nc.size(); ++ic) {
        for (std::size_t id = 0; id < nd.size(); ++id) {
          block(static_cast<int>(ia), static_cast<int>(ib),
                static_cast<int>(ic), static_cast<int>(id)) *=
              na[ia] * nb[ib] * nc[ic] * nd[id];
        }
      }
    }
  }
  return block;
}

linalg::Matrix schwarz_matrix(const ShellPairList& pairs) {
  const std::size_t n = pairs.basis().shell_count();
  linalg::Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const ShellPairData& pr =
          pairs.pair(static_cast<int>(i), static_cast<int>(j));
      EriBlock raw(pr.na(), pr.nb(), pr.na(), pr.nb());
      accumulate_quartet(pr, pr, raw);
      // Only the (fa, fb, fa, fb) diagonal is read, so only it gets the
      // contracted normalization (applied squared: bra and ket coincide).
      double m = 0.0;
      for (int fa = 0; fa < raw.na(); ++fa) {
        for (int fb = 0; fb < raw.nb(); ++fb) {
          const double nn = pr.norm_a[static_cast<std::size_t>(fa)] *
                            pr.norm_b[static_cast<std::size_t>(fb)];
          m = std::max(m, std::abs(raw(fa, fb, fa, fb)) * nn * nn);
        }
      }
      q(i, j) = q(j, i) = std::sqrt(m);
    }
  }
  return q;
}

linalg::Matrix schwarz_matrix(const BasisSet& basis) {
  return schwarz_matrix(ShellPairList(basis));
}

std::vector<double> full_eri_tensor(const BasisSet& basis) {
  const auto n = static_cast<std::size_t>(basis.function_count());
  std::vector<double> g(n * n * n * n, 0.0);
  const ShellPairList pairs(basis);
  const auto& shells = basis.shells();
  const int ns = static_cast<int>(shells.size());

  auto put = [&g, n](std::size_t a, std::size_t b, std::size_t c,
                     std::size_t d, double v) {
    g[((a * n + b) * n + c) * n + d] = v;
  };

  // Canonical quartets only (i >= j, k >= l, rank(kl) <= rank(ij)); the
  // remaining entries follow from the 8-fold permutational symmetry.
  // Every member of a tuple's symmetry orbit receives its value from the
  // same block element, so the tensor is bitwise symmetric.
  for (int i = 0; i < ns; ++i) {
    for (int j = 0; j <= i; ++j) {
      const ShellPairData& bra = pairs.pair(i, j);
      for (int k = 0; k <= i; ++k) {
        const int lmax = (k == i) ? j : k;
        for (int l = 0; l <= lmax; ++l) {
          const EriBlock b = eri_shell_quartet(bra, pairs.pair(k, l));
          for (int fa = 0; fa < b.na(); ++fa) {
            for (int fb = 0; fb < b.nb(); ++fb) {
              for (int fc = 0; fc < b.nc(); ++fc) {
                for (int fd = 0; fd < b.nd(); ++fd) {
                  const double v = b(fa, fb, fc, fd);
                  const auto ia =
                      static_cast<std::size_t>(shells[static_cast<std::size_t>(
                                                          i)].first_function +
                                               fa);
                  const auto ib =
                      static_cast<std::size_t>(shells[static_cast<std::size_t>(
                                                          j)].first_function +
                                               fb);
                  const auto ic =
                      static_cast<std::size_t>(shells[static_cast<std::size_t>(
                                                          k)].first_function +
                                               fc);
                  const auto id =
                      static_cast<std::size_t>(shells[static_cast<std::size_t>(
                                                          l)].first_function +
                                               fd);
                  put(ia, ib, ic, id, v);
                  put(ib, ia, ic, id, v);
                  put(ia, ib, id, ic, v);
                  put(ib, ia, id, ic, v);
                  put(ic, id, ia, ib, v);
                  put(id, ic, ia, ib, v);
                  put(ic, id, ib, ia, v);
                  put(id, ic, ib, ia, v);
                }
              }
            }
          }
        }
      }
    }
  }
  return g;
}

}  // namespace emc::chem
