// Tests for the fault-injection layer: the same MachineConfig::seed and
// FaultModel must replay to an identical simulation (makespan, trace,
// retry counts) for every simulator; stalls must lose work (longer
// makespans, re-execution events); the model must validate its inputs;
// and fault events must satisfy the same trace invariants as everything
// else.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::sim;
using emc::lb::Assignment;

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  emc::Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = std::exp(rng.uniform(-9.0, -4.0));
  return costs;
}

MachineConfig faulted_machine(int procs, std::uint64_t seed) {
  MachineConfig c;
  c.n_procs = procs;
  c.procs_per_node = 8;
  c.record_trace = true;
  c.seed = seed;
  c.faults.fault_prob = 0.5;
  c.faults.onset_min = 0.0;
  c.faults.onset_max = 2e-4;
  c.faults.duration = 2e-4;
  c.faults.slowdown_factor = 0.0;  // stall: in-flight work is lost
  c.faults.drop_prob = 0.2;
  c.faults.outage_start = 1e-4;
  c.faults.outage_duration = 1e-4;
  return c;
}

struct NamedSim {
  const char* name;
  std::function<SimResult(const MachineConfig&)> run;
};

std::vector<NamedSim> all_simulators(const std::vector<double>& costs,
                                     int procs) {
  const Assignment block = emc::lb::block_assignment(costs.size(), procs);
  return {
      {"static",
       [&costs, block](const MachineConfig& c) {
         return simulate_static(c, costs, block);
       }},
      {"counter",
       [&costs](const MachineConfig& c) {
         return simulate_counter(c, costs, 4);
       }},
      {"hier",
       [&costs](const MachineConfig& c) {
         return simulate_hierarchical_counter(c, costs, 16, 2);
       }},
      {"hybrid",
       [&costs, block](const MachineConfig& c) {
         return simulate_hybrid(c, costs, block, 0.5, 2);
       }},
      {"ws",
       [&costs, block](const MachineConfig& c) {
         return simulate_work_stealing(c, costs, block);
       }},
  };
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const char* name) {
  EXPECT_EQ(a.makespan, b.makespan) << name;
  EXPECT_EQ(a.op_retries, b.op_retries) << name;
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted) << name;
  EXPECT_EQ(a.steals, b.steals) << name;
  EXPECT_EQ(a.counter_ops, b.counter_ops) << name;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << name;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].type, b.trace[i].type) << name << " event " << i;
    EXPECT_EQ(a.trace[i].proc, b.trace[i].proc) << name << " event " << i;
    EXPECT_EQ(a.trace[i].task, b.trace[i].task) << name << " event " << i;
    EXPECT_EQ(a.trace[i].start, b.trace[i].start) << name << " event " << i;
    EXPECT_EQ(a.trace[i].end, b.trace[i].end) << name << " event " << i;
  }
}

std::size_t count_type(const SimResult& r, TraceEventType type) {
  std::size_t n = 0;
  for (const TraceEvent& ev : r.trace) {
    if (ev.type == type) ++n;
  }
  return n;
}

TEST(FaultDeterminism, SameSeedSameModelReplaysIdentically) {
  const auto costs = skewed_costs(400, 211);
  const MachineConfig config = faulted_machine(16, 9);
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    expect_identical(sim.run(config), sim.run(config), sim.name);
  }
}

TEST(FaultDeterminism, DifferentSeedsDivergeSomewhere) {
  const auto costs = skewed_costs(400, 211);
  const MachineConfig a = faulted_machine(16, 9);
  const MachineConfig b = faulted_machine(16, 10);
  // At least one simulator must see different fault placement; with
  // fault_prob 0.5 over 16 procs identical draws are ~1e-5 likely.
  bool any_diverged = false;
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    const SimResult ra = sim.run(a);
    const SimResult rb = sim.run(b);
    if (ra.makespan != rb.makespan ||
        ra.trace.size() != rb.trace.size()) {
      any_diverged = true;
    }
  }
  EXPECT_TRUE(any_diverged);
}

TEST(FaultInjection, StallsExtendMakespanAndForceReexecution) {
  const auto costs = skewed_costs(500, 223);
  MachineConfig clean = faulted_machine(16, 5);
  clean.faults = FaultModel{};  // benign machine
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    const SimResult faulted = sim.run(faulted_machine(16, 5));
    const SimResult baseline = sim.run(clean);
    // The static schedule has no way to route around a stall, so its
    // makespan is monotone in faults. Dynamic models usually degrade
    // too, but fault-perturbed timing changes grab/steal order and can
    // occasionally land on a luckier schedule — for them only the
    // work-conservation bound (makespan >= T1 / P) is an invariant.
    if (std::string(sim.name) == "static") {
      EXPECT_GE(faulted.makespan, baseline.makespan) << sim.name;
    }
    double total_work = 0.0;
    for (double c : costs) total_work += c;
    EXPECT_GE(faulted.makespan, total_work / 16.0) << sim.name;
    EXPECT_EQ(count_type(faulted, TraceEventType::kTaskReexec),
              static_cast<std::size_t>(faulted.tasks_reexecuted))
        << sim.name;
    EXPECT_EQ(baseline.tasks_reexecuted, 0) << sim.name;
    EXPECT_EQ(baseline.op_retries, 0) << sim.name;
    // All tasks still executed exactly the work they carry: summed
    // busy time equals summed cost in both runs (lost work is traced
    // as kTaskReexec, not counted busy).
    double busy_faulted = 0.0, busy_clean = 0.0, total = 0.0;
    for (double b : faulted.busy) busy_faulted += b;
    for (double b : baseline.busy) busy_clean += b;
    for (double c : costs) total += c;
    EXPECT_NEAR(busy_faulted, total, 1e-9) << sim.name;
    EXPECT_NEAR(busy_clean, total, 1e-9) << sim.name;
  }
}

TEST(FaultInjection, FaultWindowsAppearPairedInTrace) {
  const auto costs = skewed_costs(400, 227);
  const MachineConfig config = faulted_machine(16, 21);
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    const SimResult r = sim.run(config);
    const std::size_t starts = count_type(r, TraceEventType::kFaultStart);
    const std::size_t ends = count_type(r, TraceEventType::kFaultEnd);
    EXPECT_EQ(starts, ends) << sim.name;
    // fault_prob = 0.5 over 16 procs plus the counter outage: some
    // window must exist for this seed.
    EXPECT_GT(starts, 0u) << sim.name;
  }
}

TEST(FaultInjection, DropsProduceRetryEventsOnDynamicModels) {
  const auto costs = skewed_costs(600, 229);
  MachineConfig config = faulted_machine(16, 33);
  config.faults.fault_prob = 0.0;  // isolate the drop channel
  config.faults.outage_start = -1.0;
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    const SimResult r = sim.run(config);
    EXPECT_EQ(count_type(r, TraceEventType::kOpRetry),
              static_cast<std::size_t>(r.op_retries))
        << sim.name;
    // Static has no one-sided round trips to drop.
    if (std::string(sim.name) == "static") {
      EXPECT_EQ(r.op_retries, 0);
    } else {
      EXPECT_GT(r.op_retries, 0) << sim.name;
    }
  }
}

TEST(FaultSchedule, BoundedRetriesAndBackoffGrowth) {
  MachineConfig config;
  config.n_procs = 4;
  config.faults.drop_prob = 0.999;  // nearly always dropped...
  config.faults.max_retries = 6;    // ...but never past the cap
  const FaultSchedule sched(config);
  EXPECT_FALSE(sched.drop_op(0, 0, config.faults.max_retries));
  EXPECT_FALSE(sched.drop_op(0, 0, config.faults.max_retries + 3));
  // Exponential growth with the configured multiplier.
  EXPECT_DOUBLE_EQ(sched.backoff(0), config.faults.retry_backoff);
  EXPECT_DOUBLE_EQ(sched.backoff(3),
                   config.faults.retry_backoff * 8.0);
}

TEST(FaultSchedule, OutageHoldsArrivalsInsideWindowOnly) {
  MachineConfig config;
  config.n_procs = 4;
  config.faults.outage_start = 1.0;
  config.faults.outage_duration = 0.5;
  const FaultSchedule sched(config);
  EXPECT_DOUBLE_EQ(sched.outage_release(0.9), 0.9);   // before
  EXPECT_DOUBLE_EQ(sched.outage_release(1.0), 1.5);   // at start
  EXPECT_DOUBLE_EQ(sched.outage_release(1.49), 1.5);  // inside
  EXPECT_DOUBLE_EQ(sched.outage_release(1.5), 1.5);   // at end: open
  EXPECT_DOUBLE_EQ(sched.outage_release(2.0), 2.0);   // after
}

TEST(FaultSchedule, RejectsMalformedModels) {
  MachineConfig config;
  config.n_procs = 4;

  auto with = [&](auto mutate) {
    MachineConfig c = config;
    mutate(c.faults);
    return c;
  };
  EXPECT_THROW(FaultSchedule(with([](FaultModel& f) { f.fault_prob = -0.1; })),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule(with([](FaultModel& f) { f.fault_prob = 1.5; })),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule(with([](FaultModel& f) { f.drop_prob = 1.0; })),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule(with([](FaultModel& f) {
                 f.fault_prob = 0.5;
                 f.onset_min = 2.0;
                 f.onset_max = 1.0;
               })),
               std::invalid_argument);
  EXPECT_THROW(FaultSchedule(with([](FaultModel& f) {
                 f.fault_prob = 0.5;
                 f.duration = -1.0;
               })),
               std::invalid_argument);
  EXPECT_THROW(
      FaultSchedule(with([](FaultModel& f) { f.slowdown_factor = 1.5; })),
      std::invalid_argument);
  EXPECT_THROW(
      FaultSchedule(with([](FaultModel& f) {
        f.drop_prob = 0.1;
        f.max_retries = 0;
      })),
      std::invalid_argument);
  EXPECT_THROW(
      FaultSchedule(with([](FaultModel& f) {
        f.drop_prob = 0.1;
        f.retry_backoff = -1e-6;
      })),
      std::invalid_argument);
  EXPECT_THROW(
      FaultSchedule(with([](FaultModel& f) {
        f.outage_start = 1.0;
        f.outage_duration = -0.5;
      })),
      std::invalid_argument);
  // The benign model is fine and inactive.
  EXPECT_FALSE(FaultSchedule(config).active());
}

TEST(FaultInjection, SlowdownWithoutStallDilatesButNeverReexecutes) {
  const auto costs = skewed_costs(400, 233);
  MachineConfig config = faulted_machine(16, 77);
  config.faults.slowdown_factor = 0.5;  // half speed, no lost work
  config.faults.drop_prob = 0.0;
  config.faults.outage_start = -1.0;
  for (const NamedSim& sim : all_simulators(costs, 16)) {
    const SimResult r = sim.run(config);
    EXPECT_EQ(r.tasks_reexecuted, 0) << sim.name;
    EXPECT_EQ(count_type(r, TraceEventType::kTaskReexec), 0u) << sim.name;
  }
}

TEST(FaultInjection, TraceStaysInsideMakespanWithFaults) {
  const auto costs = skewed_costs(300, 239);
  const MachineConfig config = faulted_machine(8, 13);
  for (const NamedSim& sim : all_simulators(costs, 8)) {
    const SimResult r = sim.run(config);
    for (const TraceEvent& ev : r.trace) {
      EXPECT_GE(ev.start, 0.0) << sim.name;
      EXPECT_LE(ev.start, ev.end + 1e-12) << sim.name;
      EXPECT_LE(ev.end, r.makespan + 1e-12) << sim.name;
    }
  }
}

}  // namespace
