#pragma once

// Second-order Møller-Plesset perturbation theory on top of a converged
// RHF reference. The AO->MO integral transformation is done as four
// quarter-transformations (O(n^5)); fine for the molecule sizes this
// library targets and a second, differently-shaped kernel for the
// execution-model studies (transformation work units are dense GEMM-like
// rather than sparse quartet digestion).

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"

namespace emc::chem {

struct Mp2Result {
  double correlation_energy = 0.0;   ///< E(2), always <= 0
  double total_energy = 0.0;         ///< E(RHF) + E(2)
  double same_spin = 0.0;            ///< SS component (for SCS-MP2)
  double opposite_spin = 0.0;        ///< OS component
};

/// Computes the MP2 correlation energy from a converged RHF result.
/// Throws std::invalid_argument if the reference did not converge.
Mp2Result run_mp2(const Molecule& molecule, const BasisSet& basis,
                  const ScfOptions& scf_options = {});

}  // namespace emc::chem
