#pragma once

// BLAS-like dense kernels over emc::linalg::Matrix.

#include <span>

#include "linalg/matrix.hpp"

namespace emc::linalg {

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = alpha * A * B + beta * C (general matrix multiply-accumulate).
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c);

/// y = A * x.
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// <x, y>.
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Returns A^T * B * A (basis-change congruence transform, used heavily
/// in SCF: F' = X^T F X).
Matrix congruence(const Matrix& x, const Matrix& b);

}  // namespace emc::linalg
