// Invariants of the scoped-span profiler: nesting and exclusive-time
// accounting, disabled-mode inertness, multi-thread merging, reset, and
// the JSON / Chrome-trace exports (both must satisfy the strict
// parser).
//
// The profiler is process-global, so every test begins with
// set_enabled + reset and ends disabled; tests run single-binary so
// the shared state is sequenced by gtest.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/profiler.hpp"

namespace {

using emc::util::ProfileSpanStats;
using emc::util::Profiler;

const ProfileSpanStats* find(const std::vector<ProfileSpanStats>& spans,
                             const std::string& path) {
  for (const auto& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

void spin_for_ns(std::int64_t ns) {
  const auto start = std::chrono::steady_clock::now();
  while ((std::chrono::steady_clock::now() - start).count() < ns) {
  }
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().set_enabled(true);
    Profiler::global().reset();
  }
  void TearDown() override { Profiler::global().set_enabled(false); }
};

TEST_F(ProfilerTest, RecordsCallsAndNesting) {
  for (int i = 0; i < 3; ++i) {
    EMC_PROF_SPAN("outer");
    {
      EMC_PROF_SPAN("inner");
      spin_for_ns(100000);
    }
    {
      EMC_PROF_SPAN("inner");
      spin_for_ns(100000);
    }
  }
  const auto spans = Profiler::global().aggregate();
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 3);
  EXPECT_EQ(inner->calls, 6);  // same path from two scopes merges
  EXPECT_EQ(outer->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(inner->name, "inner");
}

TEST_F(ProfilerTest, ExclusiveIsInclusiveMinusChildren) {
  {
    EMC_PROF_SPAN("parent");
    spin_for_ns(200000);
    {
      EMC_PROF_SPAN("child");
      spin_for_ns(200000);
    }
  }
  const auto spans = Profiler::global().aggregate();
  const auto* parent = find(spans, "parent");
  const auto* child = find(spans, "parent/child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_GE(parent->inclusive_s, child->inclusive_s);
  EXPECT_NEAR(parent->exclusive_s,
              parent->inclusive_s - child->inclusive_s, 1e-12);
  EXPECT_GE(parent->exclusive_s, 0.0);
  // The child has no children: exclusive == inclusive.
  EXPECT_DOUBLE_EQ(child->exclusive_s, child->inclusive_s);
}

TEST_F(ProfilerTest, DepthFirstOrderParentBeforeChild) {
  {
    EMC_PROF_SPAN("a");
    { EMC_PROF_SPAN("b"); }
  }
  { EMC_PROF_SPAN("z"); }
  const auto spans = Profiler::global().aggregate();
  const auto pos = [&](const std::string& path) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].path == path) return static_cast<std::ptrdiff_t>(i);
    }
    return static_cast<std::ptrdiff_t>(-1);
  };
  ASSERT_GE(pos("a"), 0);
  ASSERT_GE(pos("a/b"), 0);
  ASSERT_GE(pos("z"), 0);
  EXPECT_EQ(pos("a/b"), pos("a") + 1);
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  Profiler::global().set_enabled(false);
  { EMC_PROF_SPAN("ghost"); }
  Profiler::global().set_enabled(true);
  const auto spans = Profiler::global().aggregate();
  EXPECT_EQ(find(spans, "ghost"), nullptr);
}

TEST_F(ProfilerTest, ResetZeroesEverything) {
  { EMC_PROF_SPAN("work"); }
  ASSERT_NE(find(Profiler::global().aggregate(), "work"), nullptr);
  Profiler::global().reset();
  const auto spans = Profiler::global().aggregate();
  const auto* work = find(spans, "work");
  if (work != nullptr) {
    EXPECT_EQ(work->calls, 0);
    EXPECT_DOUBLE_EQ(work->inclusive_s, 0.0);
  }
}

TEST_F(ProfilerTest, MergesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        EMC_PROF_SPAN("worker");
        EMC_PROF_SPAN("step");
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto spans = Profiler::global().aggregate();
  const auto* worker = find(spans, "worker");
  const auto* step = find(spans, "worker/step");
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(worker->calls, kThreads * kIters);
  EXPECT_EQ(step->calls, kThreads * kIters);
}

TEST_F(ProfilerTest, JsonExportParsesStrict) {
  {
    EMC_PROF_SPAN("fock/build_g");
    { EMC_PROF_SPAN("pgas/get"); }
  }
  std::ostringstream out;
  Profiler::global().write_json(out);
  const emc::util::JsonValue doc = emc::util::parse_json(out.str());
  ASSERT_TRUE(doc.has("enabled"));
  EXPECT_TRUE(doc.object.at("enabled").boolean);
  ASSERT_TRUE(doc.has("spans"));
  const auto& spans = doc.object.at("spans").array;
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].object.at("path").str, "fock/build_g");
  EXPECT_EQ(spans[1].object.at("path").str, "fock/build_g/pgas/get");
  EXPECT_EQ(spans[1].object.at("depth").number, 2.0);
}

TEST_F(ProfilerTest, ChromeTraceParsesAndNests) {
  {
    EMC_PROF_SPAN("outer");
    { EMC_PROF_SPAN("inner"); }
  }
  std::ostringstream out;
  Profiler::global().write_chrome_trace(out);
  const emc::util::JsonValue doc = emc::util::parse_json(out.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.object.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  // Child must start at (or after) the parent's start and fit inside
  // its duration — the synthetic flame layout contract.
  const auto& outer = events[0].object;
  const auto& inner = events[1].object;
  EXPECT_EQ(outer.at("name").str, "outer");
  EXPECT_EQ(inner.at("name").str, "inner");
  EXPECT_GE(inner.at("ts").number, outer.at("ts").number);
  EXPECT_LE(inner.at("ts").number + inner.at("dur").number,
            outer.at("ts").number + outer.at("dur").number + 1e-6);
}

TEST_F(ProfilerTest, SpanOpenAcrossDisableStillCloses) {
  // Disabling mid-span must not corrupt the tree: the open span closes
  // into its node regardless of the flag at exit.
  {
    EMC_PROF_SPAN("long_lived");
    Profiler::global().set_enabled(false);
  }
  Profiler::global().set_enabled(true);
  const auto spans = Profiler::global().aggregate();
  const auto* s = find(spans, "long_lived");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 1);
}

}  // namespace
