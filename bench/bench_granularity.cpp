// EXP-6 — work-unit granularity: the abstract's "correct balance between
// available work units and different system and runtime overheads".
//
// The Fock build can be decomposed at many granularities: few coarse
// tasks (whole bra-pair rows) down to millions of fine tasks (individual
// ket batches). This bench re-grains the measured task set by splitting
// each task into s equal parts (finer) or agglomerating g consecutive
// tasks (coarser), then replays the dynamic-counter and work-stealing
// models. Too coarse pays imbalance; too fine pays per-unit dispatch and
// counter/steal round trips — the U-curve the paper describes.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

namespace {

/// Re-grains a cost vector: factor > 0 splits each task into `factor`
/// equal units; factor < 0 agglomerates |factor| consecutive tasks.
std::vector<double> regrain(const std::vector<double>& costs, int factor) {
  std::vector<double> out;
  if (factor >= 1) {
    out.reserve(costs.size() * static_cast<std::size_t>(factor));
    for (double c : costs) {
      for (int s = 0; s < factor; ++s) out.push_back(c / factor);
    }
  } else {
    const int g = -factor;
    for (std::size_t i = 0; i < costs.size(); i += static_cast<std::size_t>(g)) {
      double sum = 0.0;
      for (std::size_t j = i;
           j < std::min(costs.size(), i + static_cast<std::size_t>(g)); ++j) {
        sum += costs[j];
      }
      out.push_back(sum);
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-6: work-unit granularity vs runtime overheads (P = 256)",
      "too-coarse pays imbalance, too-fine pays per-unit overheads",
      model);

  sim::MachineConfig machine = emc::bench::make_machine(256);
  // Per-unit costs of a GA-class runtime: task dispatch + the one-sided
  // gets/accumulates every work unit performs.
  machine.task_overhead = 2.0e-6;
  machine.counter_service = 0.3e-6;

  Table table({"grain", "units", "units_per_proc", "mean_unit_us",
               "counter_ms", "stealing_ms"});
  table.set_precision(3);

  // factor: negative = agglomerate, positive = split.
  for (int factor : {-512, -128, -32, -8, -2, 1, 4, 16, 64, 256}) {
    const auto costs = regrain(model.costs, factor);
    const auto n = costs.size();

    const sim::SimResult counter = sim::simulate_counter(machine, costs, 1);
    const auto block = lb::block_assignment(n, machine.n_procs);
    const sim::SimResult steal =
        sim::simulate_work_stealing(machine, costs, block);

    double total = 0.0;
    for (double c : costs) total += c;
    const std::string label =
        factor >= 1 ? "split x" + std::to_string(factor)
                    : "merge x" + std::to_string(-factor);
    table.add_row({label, static_cast<std::int64_t>(n),
                   static_cast<double>(n) / machine.n_procs,
                   total / static_cast<double>(n) * 1e6,
                   counter.makespan * 1e3, steal.makespan * 1e3});
  }
  table.print(std::cout,
              "granularity sweep (expect U-curves in both columns)");

  std::cout << "\nlower bound (perfect balance, zero overhead): "
            << model.total_cost() / machine.n_procs * 1e3 << " ms\n";
  return 0;
}
