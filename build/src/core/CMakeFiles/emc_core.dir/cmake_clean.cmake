file(REMOVE_RECURSE
  "CMakeFiles/emc_core.dir/calibration.cpp.o"
  "CMakeFiles/emc_core.dir/calibration.cpp.o.d"
  "CMakeFiles/emc_core.dir/distributed_fock.cpp.o"
  "CMakeFiles/emc_core.dir/distributed_fock.cpp.o.d"
  "CMakeFiles/emc_core.dir/experiment.cpp.o"
  "CMakeFiles/emc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/emc_core.dir/task_model.cpp.o"
  "CMakeFiles/emc_core.dir/task_model.cpp.o.d"
  "libemc_core.a"
  "libemc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
