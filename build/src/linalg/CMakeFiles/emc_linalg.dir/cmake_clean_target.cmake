file(REMOVE_RECURSE
  "libemc_linalg.a"
)
