# Empty compiler generated dependencies file for emc_exec.
# This may be replaced when dependencies are built.
