# Empty compiler generated dependencies file for emc_util.
# This may be replaced when dependencies are built.
