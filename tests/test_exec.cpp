// Execution-model tests: Chase–Lev deque correctness (sequential and
// under concurrent theft) and the exactly-once guarantee of every
// scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "exec/schedulers.hpp"
#include "exec/ws_deque.hpp"
#include "lb/simple.hpp"

namespace {

using namespace emc::exec;

TEST(WsDequeTest, LifoForOwner) {
  WsDeque d(8);
  EXPECT_TRUE(d.push(1));
  EXPECT_TRUE(d.push(2));
  EXPECT_TRUE(d.push(3));
  EXPECT_EQ(d.pop().value(), 3);
  EXPECT_EQ(d.pop().value(), 2);
  EXPECT_EQ(d.pop().value(), 1);
  EXPECT_FALSE(d.pop().has_value());
}

TEST(WsDequeTest, FifoForThief) {
  WsDeque d(8);
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal().value(), 1);
  EXPECT_EQ(d.steal().value(), 2);
  EXPECT_EQ(d.pop().value(), 3);
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WsDequeTest, CapacityRespected) {
  WsDeque d(2);
  EXPECT_TRUE(d.push(1));
  EXPECT_TRUE(d.push(2));
  EXPECT_FALSE(d.push(3));
  d.steal();
  EXPECT_TRUE(d.push(3));  // space reclaimed after steal
}

TEST(WsDequeTest, SizeEstimate) {
  WsDeque d(16);
  EXPECT_EQ(d.size_estimate(), 0);
  d.push(1);
  d.push(2);
  EXPECT_EQ(d.size_estimate(), 2);
}

TEST(WsDequeTest, ConcurrentTheftExactlyOnce) {
  // Owner pushes N items and pops; thieves steal concurrently. Every item
  // must be consumed exactly once.
  const std::int64_t n = 20000;
  const int n_thieves = 3;
  WsDeque d(static_cast<std::size_t>(n));
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  std::atomic<std::int64_t> consumed{0};

  std::thread owner([&] {
    for (std::int64_t i = 0; i < n; ++i) {
      d.push(i);
      // Interleave pops to exercise the pop/steal race on size 1.
      if (i % 3 == 0) {
        if (auto v = d.pop()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          consumed.fetch_add(1);
        }
      }
    }
    while (auto v = d.pop()) {
      seen[static_cast<std::size_t>(*v)].fetch_add(1);
      consumed.fetch_add(1);
    }
  });

  std::vector<std::thread> thieves;
  for (int t = 0; t < n_thieves; ++t) {
    thieves.emplace_back([&] {
      while (consumed.load() < n) {
        if (auto v = d.steal()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          consumed.fetch_add(1);
        }
      }
    });
  }
  owner.join();
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(WsDequeTest, OwnerVsThiefLastElementRace) {
  // Stress the one-element case specifically: the owner pushes a single
  // item and immediately pops it while a thief hammers steal(), so
  // nearly every round exercises the t == b CAS race in pop(). Each
  // item must be consumed by exactly one side — a regression guard for
  // the lost-race branch (which once carried a dead `value = -1` store).
  const std::int64_t n = 100000;
  WsDeque d(2);
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(n));
  std::atomic<bool> done{false};
  std::atomic<std::int64_t> consumed{0};

  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (auto v = d.steal()) {
        seen[static_cast<std::size_t>(*v)].fetch_add(1);
        consumed.fetch_add(1);
      }
    }
    while (auto v = d.steal()) {
      seen[static_cast<std::size_t>(*v)].fetch_add(1);
      consumed.fetch_add(1);
    }
  });

  for (std::int64_t i = 0; i < n; ++i) {
    d.push(i);
    if (auto v = d.pop()) {
      seen[static_cast<std::size_t>(*v)].fetch_add(1);
      consumed.fetch_add(1);
    }
  }
  done.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(consumed.load(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

class SchedulerFixture : public ::testing::Test {
 protected:
  static constexpr std::int64_t kTasks = 500;
  static constexpr int kRanks = 4;

  SchedulerFixture() : runtime(kRanks), hits(kTasks) {}

  TaskBody counting_body() {
    return [this](std::int64_t t, int) {
      hits[static_cast<std::size_t>(t)].fetch_add(1);
    };
  }

  void expect_exactly_once() {
    for (std::int64_t t = 0; t < kTasks; ++t) {
      ASSERT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t;
    }
  }

  emc::pgas::Runtime runtime;
  std::vector<std::atomic<int>> hits;
};

TEST_F(SchedulerFixture, StaticExecutesAllExactlyOnce) {
  const auto assignment = emc::lb::block_assignment(kTasks, kRanks);
  const ExecutionStats stats =
      run_static(runtime, kTasks, assignment, counting_body());
  expect_exactly_once();
  EXPECT_EQ(stats.total_tasks(), kTasks);
  EXPECT_EQ(stats.ranks.size(), static_cast<std::size_t>(kRanks));
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(SchedulerFixture, StaticHonorsAssignment) {
  const auto assignment = emc::lb::cyclic_assignment(kTasks, kRanks);
  std::vector<std::atomic<int>> executor(kTasks);
  run_static(runtime, kTasks, assignment,
             [&](std::int64_t t, int rank) {
               executor[static_cast<std::size_t>(t)].store(rank);
             });
  for (std::int64_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(executor[static_cast<std::size_t>(t)].load(),
              assignment[static_cast<std::size_t>(t)]);
  }
}

TEST_F(SchedulerFixture, CounterExecutesAllExactlyOnce) {
  const ExecutionStats stats =
      run_counter(runtime, kTasks, /*chunk=*/7, counting_body());
  expect_exactly_once();
  EXPECT_EQ(stats.total_tasks(), kTasks);
  // Every rank performed at least its terminating counter op.
  for (const auto& r : stats.ranks) {
    EXPECT_GE(r.counter_ops, 1);
  }
}

TEST_F(SchedulerFixture, CounterChunkOneWorks) {
  run_counter(runtime, kTasks, 1, counting_body());
  expect_exactly_once();
}

TEST_F(SchedulerFixture, CounterRejectsBadChunk) {
  EXPECT_THROW(run_counter(runtime, kTasks, 0, counting_body()),
               std::invalid_argument);
}

TEST_F(SchedulerFixture, WorkStealingExecutesAllExactlyOnce) {
  const auto initial = emc::lb::block_assignment(kTasks, kRanks);
  const ExecutionStats stats =
      run_work_stealing(runtime, kTasks, initial, counting_body());
  expect_exactly_once();
  EXPECT_EQ(stats.total_tasks(), kTasks);
}

TEST_F(SchedulerFixture, WorkStealingFromSkewedAssignmentSteals) {
  // Everything starts on rank 0; other ranks can only contribute by
  // stealing, so at least one steal must succeed.
  const emc::lb::Assignment initial(kTasks, 0);
  std::vector<int> executed_by;
  WorkStealingOptions options;
  const ExecutionStats stats = run_work_stealing(
      runtime, kTasks, initial,
      [](std::int64_t, int) {
        // Small but nonzero work so thieves get a window.
        volatile double x = 0.0;
        for (int i = 0; i < 2000; ++i) x = x + 1.0;
      },
      options, &executed_by);
  EXPECT_GT(stats.total_steals(), 0);
  ASSERT_EQ(executed_by.size(), static_cast<std::size_t>(kTasks));
  for (int rank : executed_by) {
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, kRanks);
  }
}

TEST_F(SchedulerFixture, WorkStealingStealOneVariant) {
  const auto initial = emc::lb::block_assignment(kTasks, kRanks);
  WorkStealingOptions options;
  options.steal_half = false;
  run_work_stealing(runtime, kTasks, initial, counting_body(), options);
  expect_exactly_once();
}

TEST_F(SchedulerFixture, RetentiveRunsEveryIteration) {
  const auto initial = emc::lb::block_assignment(kTasks, kRanks);
  std::atomic<std::int64_t> total{0};
  const auto rounds = run_retentive_work_stealing(
      runtime, kTasks, initial,
      [&](std::int64_t, int) { total.fetch_add(1); }, 3);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(total.load(), 3 * kTasks);
  for (const auto& r : rounds) {
    EXPECT_EQ(r.total_tasks(), kTasks);
  }
}

TEST_F(SchedulerFixture, MismatchedAssignmentThrows) {
  const emc::lb::Assignment wrong(10, 0);
  EXPECT_THROW(run_static(runtime, kTasks, wrong, counting_body()),
               std::invalid_argument);
  EXPECT_THROW(run_work_stealing(runtime, kTasks, wrong, counting_body()),
               std::invalid_argument);
}

TEST(SchedulerSingleRank, AllModelsDegenerate) {
  emc::pgas::Runtime rt(1);
  const std::int64_t n = 50;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  const TaskBody body = [&](std::int64_t t, int) {
    hits[static_cast<std::size_t>(t)].fetch_add(1);
  };

  run_static(rt, n, emc::lb::Assignment(static_cast<std::size_t>(n), 0),
             body);
  run_counter(rt, n, 4, body);
  run_work_stealing(rt, n,
                    emc::lb::Assignment(static_cast<std::size_t>(n), 0),
                    body);
  for (std::int64_t t = 0; t < n; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 3);
  }
}

TEST(SchedulerExceptionTest, CounterPropagatesWithoutDeadlock) {
  emc::pgas::Runtime rt(4);
  EXPECT_THROW(
      run_counter(rt, 1000, 1,
                  [](std::int64_t t, int) {
                    if (t == 137) throw std::runtime_error("task exploded");
                  }),
      std::runtime_error);
}

TEST(SchedulerExceptionTest, WorkStealingPropagatesWithoutDeadlock) {
  emc::pgas::Runtime rt(4);
  const auto initial = emc::lb::block_assignment(1000, 4);
  EXPECT_THROW(
      run_work_stealing(rt, 1000, initial,
                        [](std::int64_t t, int) {
                          if (t == 500) {
                            throw std::runtime_error("task exploded");
                          }
                        }),
      std::runtime_error);
}

TEST(ExecutionStatsTest, UtilizationMath) {
  ExecutionStats s;
  s.wall_seconds = 2.0;
  s.ranks.resize(2);
  s.ranks[0].busy_seconds = 2.0;
  s.ranks[1].busy_seconds = 1.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.75);
  ExecutionStats empty;
  EXPECT_DOUBLE_EQ(empty.utilization(), 0.0);
}

}  // namespace
