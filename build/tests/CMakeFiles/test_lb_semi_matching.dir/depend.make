# Empty dependencies file for test_lb_semi_matching.
# This may be replaced when dependencies are built.
