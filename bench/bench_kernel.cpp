// Kernel microbenchmarks (google-benchmark): the raw chemistry substrate
// that generates the task costs — ERI quartets, Schwarz screening, and
// one SCF Fock build. These calibrate the simulator's cost scale.

#include <benchmark/benchmark.h>

#include "chem/basis.hpp"
#include "chem/eri.hpp"
#include "chem/fock.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"

namespace {

using namespace emc::chem;

void BM_EriQuartetSSSS(benchmark::State& state) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const Shell& s0 = basis.shells()[0];  // O 1s (deep contraction)
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet(s0, s0, s0, s0));
  }
}
BENCHMARK(BM_EriQuartetSSSS);

void BM_EriQuartetPPPP(benchmark::State& state) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const Shell& p = basis.shells()[2];  // O 2p
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet(p, p, p, p));
  }
}
BENCHMARK(BM_EriQuartetPPPP);

void BM_OverlapMatrix(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlap_matrix(basis));
  }
  state.counters["functions"] = basis.function_count();
}
BENCHMARK(BM_OverlapMatrix)->Arg(1)->Arg(4)->Arg(8);

void BM_SchwarzMatrix(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  for (auto _ : state) {
    benchmark::DoNotOptimize(schwarz_matrix(basis));
  }
  state.counters["shells"] = static_cast<double>(basis.shell_count());
}
BENCHMARK(BM_SchwarzMatrix)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FockBuild(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());
  emc::linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) density(i, i) = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build_g(density));
  }
}
BENCHMARK(BM_FockBuild)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
