// EXP-1 — task-cost heterogeneity of the Fock build (the figure that
// motivates dynamic load balancing). Prints per-workload cost statistics
// and a log-scale histogram of task costs.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  Table table({"workload", "tasks", "min_cost", "p50", "p90", "p99",
               "max_cost", "max/min", "cv"});
  table.set_precision(3);

  const std::vector<std::string> workloads{"water4", "water8", "water16",
                                           "alkane8", "alkane16"};
  core::TaskModel last;
  for (const auto& name : workloads) {
    const core::TaskModel model = bench::standard_workload(name);
    const Summary s = summarize(model.costs);
    table.add_row({name, static_cast<std::int64_t>(model.task_count()),
                   s.min * 1e6, s.p50 * 1e6, s.p90 * 1e6, s.p99 * 1e6,
                   s.max * 1e6, s.min > 0.0 ? s.max / s.min : 0.0, s.cv()});
    last = model;
  }

  bench::print_header(
      "EXP-1: Fock-build task-cost heterogeneity",
      "SCF tasks are highly irregular, motivating dynamic load balancing",
      last);
  std::cout << "(costs in simulated microseconds)\n";
  table.print(std::cout, "task cost distributions");

  // Log10-cost histogram for the largest workload.
  std::vector<double> logs;
  logs.reserve(last.costs.size());
  for (double c : last.costs) {
    if (c > 0.0) logs.push_back(std::log10(c));
  }
  const Summary ls = summarize(logs);
  Histogram h(ls.min, ls.max + 1e-9, 12);
  h.add_all(logs);
  std::cout << "\nlog10(task cost) histogram, " << workloads.back() << ":\n"
            << h.render(48);
  return 0;
}
