#pragma once

// Pluggable event schedulers for the discrete-event simulators.
//
// Every event-driven simulator (counter family, hybrid tail, work
// stealing) drains a priority queue of (time, key) pairs. The seed used
// std::priority_queue — O(log n) per operation, which dominates the hot
// loop once the pending-event set reaches datacenter scale (P = 10k-100k
// outstanding proc events). This header provides two interchangeable
// backends behind one EventQueue facade:
//
//  - kBinaryHeap: the std-heap oracle, kept as the default so every
//    seed-era golden number stays bitwise identical.
//  - kCalendarQueue: Brown's calendar queue — a rotating array of time
//    buckets ("days" of a "year"), each holding the events that fall in
//    its slice. Enqueue hashes the timestamp to a bucket in O(1);
//    dequeue scans forward from the current day. Bucket count and width
//    adapt to the live event population, giving amortized O(1) per
//    operation instead of O(log n).
//
// Determinism contract: pops follow the strict total order
// (time ascending, key ascending). Callers encode their tie-break AND
// payload into `key` (the work-stealing simulator packs its monotone
// sequence number above the proc id, the counter family packs
// (proc << 1) | kind), and never enqueue two events with equal
// (time, key). Under that contract both backends pop the exact same
// sequence, so a simulation is bitwise reproducible across schedulers —
// the property tests/test_sim_schedulers.cpp pins.
//
// Storage is pooled: events live in flat per-bucket arrays of packed
// 16-byte (time, key) words that are recycled across the run — no
// per-event heap allocation once the bucket arrays are warm. Timestamps
// must be non-negative and finite; the packing relies on the IEEE-754
// property that bit patterns of non-negative doubles order like
// unsigned integers.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

namespace emc::sim {

/// Which event-scheduler backend a simulation drains.
enum class SchedulerKind : std::uint8_t {
  kBinaryHeap = 0,  ///< std::priority_queue oracle, O(log n)
  kCalendarQueue,   ///< calendar queue, amortized O(1)
};

/// Display name ("heap", "calendar").
const char* scheduler_name(SchedulerKind kind);

/// Inverse of scheduler_name; throws std::invalid_argument on an
/// unknown name (accepts "calendar-queue" as an alias for "calendar").
SchedulerKind parse_scheduler(const std::string& name);

/// One scheduled event: fires at `time`; `key` is the strict tie-break
/// and carries the caller's payload bits.
struct SimEvent {
  double time = 0.0;
  std::uint64_t key = 0;
};

/// Min-queue over (time, key) with selectable backend. Not thread-safe;
/// one per simulation run.
class EventQueue {
 public:
  /// `expected` sizes the initial calendar (and reserves the heap) so
  /// the steady-state population triggers no growth — pass the proc
  /// count for proc-event loops.
  explicit EventQueue(SchedulerKind kind, std::size_t expected = 0);

  void push(double time, std::uint64_t key);

  /// Removes and returns the minimum (time, key) event. Precondition:
  /// !empty().
  SimEvent pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  SchedulerKind kind() const { return kind_; }

 private:
  // ---- calendar backend ----------------------------------------------

  /// Packed bucket entry: non-negative-double time as raw bits, then the
  /// tie-break key. Lexicographic compare on the two words is exactly
  /// the (time, key) order.
  struct Entry {
    std::uint64_t tbits = 0;
    std::uint64_t key = 0;

    bool operator<(const Entry& o) const {
      return tbits != o.tbits ? tbits < o.tbits : key < o.key;
    }
  };

  /// One calendar day: entries[head, size) is the live population, kept
  /// ascending in (time, key) at all times. The minimum pops from
  /// `head` in O(1); a push appends in O(1) when it is >= the current
  /// back — the overwhelmingly common case, since simulators push
  /// near-monotone times with monotone tie-break keys (the t=0 burst of
  /// P ascending-key events is a pure append run) — and binary-inserts
  /// otherwise. The dead prefix [0, head) is reclaimed when the bucket
  /// drains. Keeping buckets sorted eliminates re-sorting entirely:
  /// a lazily-sorted design re-sorts a clustered bucket on every
  /// pop/push interleaving, which profiling showed dominating the
  /// hierarchical-counter replay.
  struct Bucket {
    std::vector<Entry> entries;
    std::size_t head = 0;

    bool empty() const { return head >= entries.size(); }
    const Entry& min() const { return entries[head]; }
  };

  static double entry_time(const Entry& e) {
    return std::bit_cast<double>(e.tbits);
  }

  std::uint64_t epoch_of(double time) const {
    return static_cast<std::uint64_t>(time / width_);
  }

  void cal_push(double time, std::uint64_t key);
  SimEvent cal_pop();
  SimEvent take_front(Bucket& bucket);
  /// Full sweep for the global minimum; used when a year's rotation
  /// finds nothing (the population is far in the future).
  SimEvent direct_search();
  /// Rebuilds the calendar with ~`n_buckets` buckets and a width fitted
  /// to the live population's time spread.
  void rebuild(std::size_t n_buckets);

  SchedulerKind kind_;
  std::size_t size_ = 0;

  // Binary-heap backend (kept exactly std::priority_queue so the oracle
  // is beyond suspicion).
  struct EventGreater {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return a.time != b.time ? a.time > b.time : a.key > b.key;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, EventGreater> heap_;

  // Calendar state. cur_epoch_ is the integer index of the day being
  // scanned (bucket = cur_epoch_ & mask_); epochs are recomputed from
  // timestamps with the same expression everywhere, so there is no
  // incremental floating-point drift.
  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;           ///< bucket count - 1 (power of two)
  double width_ = kDefaultWidth;   ///< seconds per day
  std::uint64_t cur_epoch_ = 0;
  /// Pushes + pops since the last rebuild; rate-limits the adaptive
  /// width re-fits (hot bucket / empty year) to amortized O(1).
  std::size_t ops_since_rebuild_ = 0;
  /// True once a rebuild has fitted width_ to a population with a
  /// nonzero time spread. Until then the width is the arbitrary
  /// default, and a hot bucket spanning distinct times may trigger an
  /// eager re-fit without waiting out the rate limit — otherwise the
  /// entire initial population lands in a handful of days and every
  /// push pays a long memmove until ops_since_rebuild_ catches up.
  bool fitted_ = false;

  static constexpr double kDefaultWidth = 1.0e-6;
  /// Floor on the fitted day width. Only guards the epoch computation
  /// against uint64 overflow (t / width < 2^64 holds for t up to ~10^7
  /// simulated seconds); it must stay far below the fitted width for
  /// dense populations (2 * span / size ~ 3e-10 for a million events
  /// spread over tens of microseconds), or clamping packs many events
  /// per day and every pop pays a hot-bucket re-fit.
  static constexpr double kMinWidth = 1.0e-12;
  /// A visited bucket holding more than this many events triggers a
  /// width re-fit (subject to the ops_since_rebuild_ rate limit).
  static constexpr std::size_t kHotBucket = 16;
};

}  // namespace emc::sim
