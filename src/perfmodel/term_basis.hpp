#pragma once

// PMNF-style model terms for the analytic performance-model layer.
//
// Following Extra-P's performance-model normal form, a model is a
// non-negative linear combination of terms, each term a product of
// per-predictor factors x^a * log2(x)^b. Predictors are named — "procs"
// (P), "tasks", "intensity" (task-cost heterogeneity or fault
// intensity) — so one basis machinery serves every sub-model the
// compositional layer fits (compute span, protocol overhead, link
// contention). The hypothesis grids are deliberately small: the point
// of PMNF is that real scaling behaviour lives in a handful of
// (polynomial x polylog) shapes, and a small grid is what makes
// cross-validation-driven selection (fit.hpp) meaningful instead of an
// overfitting contest.

#include <map>
#include <string>
#include <vector>

namespace emc::perfmodel {

/// One point in predictor space, e.g. {"procs": 1024, "intensity": 1.9}.
using Point = std::map<std::string, double>;

/// One factor x^exponent * log2(x)^log_exponent over a named predictor.
struct Factor {
  std::string predictor;
  double exponent = 0.0;
  int log_exponent = 0;
};

/// A coefficient-free product of factors; the empty product is the
/// constant term 1.
class Term {
 public:
  Term() = default;
  explicit Term(std::vector<Factor> factors);

  /// Value of the term at `point`. Throws std::invalid_argument when a
  /// factor's predictor is missing from the point and std::domain_error
  /// when the result is non-finite (e.g. log2 of a non-positive
  /// predictor value).
  double evaluate(const Point& point) const;

  /// Human- and report-readable name: "1" for the constant term, else
  /// e.g. "procs^0.5*log2(procs)^2*intensity^1".
  const std::string& name() const { return name_; }

  bool is_constant() const { return factors_.empty(); }
  const std::vector<Factor>& factors() const { return factors_; }

  /// The product of two terms (factor lists concatenate).
  Term operator*(const Term& other) const;

  bool operator==(const Term& other) const { return name_ == other.name_; }

 private:
  std::vector<Factor> factors_;
  std::string name_ = "1";
};

/// Hypothesis grid for one predictor's factors.
struct BasisOptions {
  /// Polynomial exponents a in x^a. 0 combines with a nonzero log
  /// exponent into pure-log terms; the (0, 0) combination is skipped.
  std::vector<double> exponents{0.0, 0.5, 1.0, 1.5, 2.0};
  /// Exponents b in log2(x)^b.
  std::vector<int> log_exponents{0, 1, 2};
};

/// All single-predictor candidate terms of the grid for `predictor`
/// (every (a, b) combination except (0, 0)), in grid order — callers
/// rely on the order being deterministic for reproducible selection.
std::vector<Term> predictor_terms(const std::string& predictor,
                                  const BasisOptions& options = {});

/// Pairwise products a_i * b_j (cross-predictor interaction terms), in
/// lexicographic (i, j) order.
std::vector<Term> cross_terms(const std::vector<Term>& a,
                              const std::vector<Term>& b);

}  // namespace emc::perfmodel
