file(REMOVE_RECURSE
  "libemc_core.a"
)
