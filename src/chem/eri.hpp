#pragma once

// Two-electron repulsion integrals (ab|cd) over contracted cartesian
// shells (chemists' notation), McMurchie–Davidson scheme.
//
// These quartets are the dominant cost of Hartree–Fock and — because
// their cost varies steeply with the shells' contraction depths, angular
// momenta, and screening outcomes — they are the source of the task-cost
// heterogeneity the paper's execution-model study revolves around.
//
// The production entry points consume precomputed ShellPairData (see
// shell_pair.hpp): Hermite E tables, merged exponents, and weighted
// centers are built once per shell pair and reused across every quartet,
// and primitive quartets whose Schwarz-like bound product is negligible
// (< 1e-17) are pruned. The seed kernel that rebuilt everything per call
// is kept as eri_shell_quartet_direct — the reference/benchmark baseline.

#include <cstddef>
#include <vector>

#include "chem/basis.hpp"
#include "chem/shell_pair.hpp"
#include "linalg/matrix.hpp"

namespace emc::chem {

/// Dense 4D quartet block with shape (na, nb, nc, nd) = the cartesian
/// function counts of the four shells.
class EriBlock {
 public:
  EriBlock(int na, int nb, int nc, int nd)
      : na_(na), nb_(nb), nc_(nc), nd_(nd),
        data_(static_cast<std::size_t>(na) * static_cast<std::size_t>(nb) *
                  static_cast<std::size_t>(nc) * static_cast<std::size_t>(nd),
              0.0) {}

  double& operator()(int a, int b, int c, int d) {
    return data_[offset(a, b, c, d)];
  }
  double operator()(int a, int b, int c, int d) const {
    return data_[offset(a, b, c, d)];
  }

  int na() const { return na_; }
  int nb() const { return nb_; }
  int nc() const { return nc_; }
  int nd() const { return nd_; }
  double max_abs() const;

 private:
  std::size_t offset(int a, int b, int c, int d) const {
    return ((static_cast<std::size_t>(a) * static_cast<std::size_t>(nb_) +
             static_cast<std::size_t>(b)) *
                static_cast<std::size_t>(nc_) +
            static_cast<std::size_t>(c)) *
               static_cast<std::size_t>(nd_) +
           static_cast<std::size_t>(d);
  }

  int na_, nb_, nc_, nd_;
  std::vector<double> data_;
};

/// Computes the contracted, normalized quartet (ab|cd) from two cached
/// shell pairs — the fast path every production caller uses.
EriBlock eri_shell_quartet(const ShellPairData& bra,
                           const ShellPairData& ket);

/// Convenience wrapper: builds the two pair records on the fly. Keeps
/// the original four-shell signature working for call sites that do not
/// hold a ShellPairList.
EriBlock eri_shell_quartet(const Shell& sa, const Shell& sb, const Shell& sc,
                           const Shell& sd);

/// The seed kernel, unchanged: rebuilds Hermite E tables inside the
/// primitive-quartet loop and evaluates the Boys function by its series.
/// Kept as the independent reference for property tests and for the
/// old-vs-new comparison in bench_kernel.
EriBlock eri_shell_quartet_direct(const Shell& sa, const Shell& sb,
                                  const Shell& sc, const Shell& sd);

/// Schwarz screening bounds: Q(i,j) = sqrt(max |(ij|ij)|) over the
/// functions of shell pair (i, j); |(ab|cd)| <= Q(a,b) * Q(c,d).
/// The ShellPairList overload reuses the cached pair data and only
/// normalizes the (fa, fb, fa, fb) diagonal entries it actually reads.
linalg::Matrix schwarz_matrix(const ShellPairList& pairs);
linalg::Matrix schwarz_matrix(const BasisSet& basis);

/// Full AO ERI tensor (n^4 doubles) for small test systems. Only
/// canonical quartets (i >= j, k >= l, rank(ij) >= rank(kl)) are
/// computed; the other entries are filled from the 8-fold permutational
/// symmetry, so the tensor is bitwise symmetric under it.
/// Index order: (ij|kl) at [((i*n + j)*n + k)*n + l].
std::vector<double> full_eri_tensor(const BasisSet& basis);

}  // namespace emc::chem
