// Tests for CSR graphs, hypergraphs, and the synthetic generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "graph/hypergraph.hpp"
#include "util/rng.hpp"

namespace {

using emc::Rng;
using emc::graph::CsrGraph;
using emc::graph::Hypergraph;
using emc::graph::NetId;
using emc::graph::VertexId;

TEST(CsrGraphTest, BasicConstruction) {
  CsrGraph::Builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 2.5);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(CsrGraphTest, NeighborsAreSorted) {
  CsrGraph::Builder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(CsrGraphTest, DuplicateEdgesAccumulateWeight) {
  CsrGraph::Builder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 1, 2.0);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weights(0)[0], 3.0);
}

TEST(CsrGraphTest, SelfLoopThrows) {
  CsrGraph::Builder b(2);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(CsrGraphTest, OutOfRangeThrows) {
  CsrGraph::Builder b(2);
  EXPECT_THROW(b.add_edge(0, 5), std::out_of_range);
}

TEST(CsrGraphTest, VertexWeights) {
  CsrGraph::Builder b(3);
  b.set_vertex_weight(1, 4.0);
  const CsrGraph g = b.build();
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 4.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 6.0);
}

TEST(GridGraphTest, SizesAndDegrees) {
  const CsrGraph g = emc::graph::make_grid_graph(3, 4);
  EXPECT_EQ(g.vertex_count(), 12);
  // Grid edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.edge_count(), 17u);
  // Corner has degree 2, interior 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(RandomGraphTest, DeterministicAndDensityPlausible) {
  Rng rng1(9), rng2(9);
  const CsrGraph a = emc::graph::make_random_graph(40, 0.2, rng1);
  const CsrGraph b = emc::graph::make_random_graph(40, 0.2, rng2);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  // E[edges] = C(40,2)*0.2 = 156; accept a generous window.
  EXPECT_GT(a.edge_count(), 100u);
  EXPECT_LT(a.edge_count(), 220u);
}

TEST(HypergraphTest, PinAndDualConsistency) {
  Hypergraph::Builder b(5);
  const NetId e0 = b.add_net({0, 1, 2});
  const NetId e1 = b.add_net({2, 3});
  const Hypergraph h = b.build();

  EXPECT_EQ(h.vertex_count(), 5);
  EXPECT_EQ(h.net_count(), 2);
  EXPECT_EQ(h.pin_count(), 5u);
  EXPECT_EQ(h.pins(e0).size(), 3u);
  EXPECT_EQ(h.pins(e1).size(), 2u);

  // Dual: vertex 2 appears in both nets; vertex 4 in none.
  EXPECT_EQ(h.nets_of(2).size(), 2u);
  EXPECT_EQ(h.nets_of(4).size(), 0u);
  // Every (net, pin) pair appears in the dual.
  for (NetId e = 0; e < h.net_count(); ++e) {
    for (VertexId v : h.pins(e)) {
      const auto nets = h.nets_of(v);
      EXPECT_NE(std::find(nets.begin(), nets.end(), e), nets.end());
    }
  }
}

TEST(HypergraphTest, DuplicatePinsDeduped) {
  Hypergraph::Builder b(3);
  b.add_net({1, 1, 2, 2});
  const Hypergraph h = b.build();
  EXPECT_EQ(h.pins(0).size(), 2u);
}

TEST(HypergraphTest, OutOfRangePinThrows) {
  Hypergraph::Builder b(2);
  EXPECT_THROW(b.add_net({0, 7}), std::out_of_range);
}

TEST(HypergraphTest, ConnectivityCut) {
  Hypergraph::Builder b(4);
  b.add_net({0, 1}, 2.0);      // net A
  b.add_net({0, 1, 2, 3});     // net B
  b.add_net({2, 3});           // net C
  const Hypergraph h = b.build();

  // Partition {0,1} | {2,3}: A uncut, B spans 2 parts (cost 1), C uncut.
  const std::vector<int> part{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(h.connectivity_cut(part, 2), 1.0);

  // Partition {0,2} | {1,3}: A cut (2.0), B cut (1.0), C cut (1.0).
  const std::vector<int> bad{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(h.connectivity_cut(bad, 2), 4.0);

  // All in one part: no cut.
  const std::vector<int> one{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(h.connectivity_cut(one, 2), 0.0);
}

TEST(HypergraphTest, ConnectivityCutFourParts) {
  Hypergraph::Builder b(4);
  b.add_net({0, 1, 2, 3}, 3.0);
  const Hypergraph h = b.build();
  const std::vector<int> spread{0, 1, 2, 3};
  // lambda = 4 -> cost w * 3.
  EXPECT_DOUBLE_EQ(h.connectivity_cut(spread, 4), 9.0);
}

TEST(RandomHypergraphTest, ShapeAndWeights) {
  Rng rng(11);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(30, 20, 4, 0.1, 10.0, rng);
  EXPECT_EQ(h.vertex_count(), 30);
  EXPECT_EQ(h.net_count(), 20);
  for (NetId e = 0; e < h.net_count(); ++e) {
    EXPECT_EQ(h.pins(e).size(), 4u);
  }
  for (VertexId v = 0; v < h.vertex_count(); ++v) {
    EXPECT_GE(h.vertex_weight(v), 0.1);
    EXPECT_LE(h.vertex_weight(v), 10.0);
  }
}

}  // namespace
