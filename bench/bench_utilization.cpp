// EXP-3 — system utilization per execution model (the abstract frames
// the whole study as "utilization of an HPC system"). Reports busy
// fraction, overhead anatomy and idle share at a fixed core count.

#include <iostream>
#include <numeric>
#include <string>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-3: utilization per execution model (P = 256)",
      "execution-model choice drives system utilization", model);

  core::ExperimentConfig config;
  config.machine.n_procs = 256;
  const auto runs = core::run_all_models(model, config);

  Table table({"model", "makespan_ms", "utilization_pct", "steals",
               "failed_steals", "counter_ops", "balance_ms"});
  table.set_precision(2);
  for (const auto& run : runs) {
    table.add_row(
        {run.name, run.sim.makespan * 1e3, run.sim.utilization() * 100.0,
         run.sim.steals, run.sim.steal_attempts - run.sim.steals,
         run.sim.counter_ops, run.balance_seconds * 1e3});
  }
  table.print(std::cout, "utilization at 256 simulated cores");

  // Utilization-over-time curves (the paper's utilization figures):
  // each row is one time bin; bar length = fraction of cores busy.
  std::cout << "\nutilization timelines (20 bins across each makespan):\n";
  sim::MachineConfig traced = config.machine;
  traced.record_trace = true;

  const auto block = emc::lb::block_assignment(model.task_count(),
                                               traced.n_procs);
  const auto lpt = emc::lb::lpt_assignment(model.costs, traced.n_procs);
  struct Curve {
    std::string name;
    sim::SimResult result;
  };
  const Curve curves[] = {
      {"static-block", sim::simulate_static(traced, model.costs, block)},
      {"static-lpt", sim::simulate_static(traced, model.costs, lpt)},
      {"counter(4)", sim::simulate_counter(traced, model.costs, 4)},
      {"work-stealing",
       sim::simulate_work_stealing(traced, model.costs, block)},
  };
  for (const Curve& curve : curves) {
    const auto timeline =
        sim::utilization_timeline(curve.result, traced.n_procs, 20);
    std::cout << "  " << curve.name << "\n";
    for (std::size_t b = 0; b < timeline.size(); ++b) {
      const auto bar = static_cast<std::size_t>(timeline[b] * 40.0);
      std::cout << "    |" << std::string(bar, '#')
                << std::string(40 - bar, ' ') << "| "
                << static_cast<int>(timeline[b] * 100.0) << "%\n";
    }
    // Critical-path anatomy of the same trace: where the proc that ends
    // the run spends its time, and the single worst idle stretch.
    const sim::TraceSummary anatomy = sim::summarize_trace(
        curve.result.trace, traced.n_procs, curve.result.makespan);
    std::cout << "    critical proc " << anatomy.critical_proc << ": busy "
              << anatomy.critical_busy * 1e3 << " ms, overhead "
              << anatomy.critical_overhead * 1e3 << " ms, idle "
              << anatomy.critical_idle * 1e3 << " ms; longest idle gap "
              << anatomy.longest_idle_gap * 1e3 << " ms on proc "
              << anatomy.longest_idle_proc << "\n";
  }
  return 0;
}
