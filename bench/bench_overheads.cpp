// EXP-8 — runtime-overhead anatomy vs core count: steal traffic (hits,
// misses, wasted round trips) and counter serialization, quantifying the
// "different system and runtime overheads" the abstract blames for
// limiting optimizations.

#include <iostream>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-8: overhead anatomy vs core count",
      "steal traffic and counter contention grow with P", model);

  Table steal_table({"procs", "steals", "failed", "fail_rate_pct",
                     "steal_wait_ms", "makespan_ms"});
  steal_table.set_precision(3);
  Table counter_table({"procs", "counter_ops", "avg_wait_us",
                       "total_wait_ms", "makespan_ms"});
  counter_table.set_precision(3);

  for (int p : {16, 32, 64, 128, 256, 512, 1024}) {
    sim::MachineConfig machine = emc::bench::make_machine(p);

    const auto block = lb::block_assignment(model.task_count(), p);
    const sim::SimResult ws =
        sim::simulate_work_stealing(machine, model.costs, block);
    const double failed =
        static_cast<double>(ws.steal_attempts - ws.steals);
    steal_table.add_row(
        {static_cast<std::int64_t>(p), ws.steals,
         ws.steal_attempts - ws.steals,
         ws.steal_attempts > 0
             ? failed / static_cast<double>(ws.steal_attempts) * 100.0
             : 0.0,
         ws.steal_wait * 1e3, ws.makespan * 1e3});

    const sim::SimResult cn = sim::simulate_counter(machine, model.costs, 4);
    counter_table.add_row(
        {static_cast<std::int64_t>(p), cn.counter_ops,
         cn.counter_wait / static_cast<double>(cn.counter_ops) * 1e6,
         cn.counter_wait * 1e3, cn.makespan * 1e3});
  }
  steal_table.print(std::cout, "work-stealing overhead anatomy");
  std::cout << "\n";
  counter_table.print(std::cout, "dynamic-counter overhead anatomy");

  // Steal provenance at a representative scale: where stolen work comes
  // from (on-node vs off-node), plus the critical-path anatomy — both
  // derived from the typed trace of the same run.
  sim::MachineConfig traced = emc::bench::make_machine(64);
  traced.record_trace = true;
  const auto block64 = lb::block_assignment(model.task_count(), 64);
  const sim::SimResult ws64 =
      sim::simulate_work_stealing(traced, model.costs, block64);
  const auto provenance = sim::steal_provenance(ws64.trace, 64);
  std::int64_t on_node = 0, off_node = 0;
  for (int thief = 0; thief < 64; ++thief) {
    for (int victim = 0; victim < 64; ++victim) {
      const std::int64_t n =
          provenance[static_cast<std::size_t>(thief) * 64 +
                     static_cast<std::size_t>(victim)];
      if (traced.node_of(thief) == traced.node_of(victim)) {
        on_node += n;
      } else {
        off_node += n;
      }
    }
  }
  const sim::TraceSummary anatomy =
      sim::summarize_trace(ws64.trace, 64, ws64.makespan);
  std::cout << "\nsteal provenance at P = 64 (uniform victims): "
            << on_node << " on-node, " << off_node << " off-node\n"
            << "critical proc " << anatomy.critical_proc << ": busy "
            << anatomy.critical_busy * 1e3 << " ms, overhead "
            << anatomy.critical_overhead * 1e3 << " ms, idle "
            << anatomy.critical_idle * 1e3 << " ms; longest idle gap "
            << anatomy.longest_idle_gap * 1e3 << " ms on proc "
            << anatomy.longest_idle_proc << "\n";
  return 0;
}
